// Targeted tests for the transformation rules: each directed rule fires on
// its pattern, declines when side conditions fail, and preserves semantics
// on concrete data.

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/eval.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "objects/database.h"
#include "util/string_util.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr S(std::vector<ValuePtr> v) { return Value::SetOf(v); }

class RulesTest : public ::testing::Test {
 protected:
  /// Applies exactly the named rule (anywhere, one step) or returns null.
  ExprPtr ApplyOnce(const std::string& rule, const ExprPtr& e) {
    Rewriter rw(&db_, RuleSet::Only({rule}));
    auto neighbors = rw.EnumerateNeighbors(e);
    return neighbors.empty() ? nullptr : neighbors.front();
  }

  /// Evaluates and requires success.
  ValuePtr Eval(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << e->ToTreeString();
    return r.ok() ? *r : nullptr;
  }

  /// Asserts the rule fires and the rewritten tree evaluates identically.
  void ExpectEquivalentRewrite(const std::string& rule, const ExprPtr& e) {
    ExprPtr rewritten = ApplyOnce(rule, e);
    ASSERT_NE(rewritten, nullptr) << rule << " did not fire on\n"
                                  << e->ToTreeString();
    EXPECT_FALSE(rewritten->Equals(*e));
    ValuePtr before = Eval(e);
    ValuePtr after = Eval(rewritten);
    ASSERT_NE(before, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_TRUE(before->Equals(*after))
        << rule << "\nbefore: " << before->ToString()
        << "\nafter:  " << after->ToString();
  }

  Database db_;
};

TEST_F(RulesTest, Rule1AddUnionAssociativity) {
  ExprPtr e = AddUnion(Const(S({I(1)})),
                       AddUnion(Const(S({I(1), I(2)})), Const(S({I(3)}))));
  ExpectEquivalentRewrite("addunion-assoc-left", e);
}

TEST_F(RulesTest, Rule2CrossDistributesOverAddUnion) {
  ExprPtr e = Cross(Const(S({I(1), I(1)})),
                    AddUnion(Const(S({I(2)})), Const(S({I(3)}))));
  ExpectEquivalentRewrite("cross-distributes-over-addunion", e);
  // And the factoring direction.
  ExprPtr f = AddUnion(Cross(Const(S({I(1)})), Const(S({I(2)}))),
                       Cross(Const(S({I(1)})), Const(S({I(3)}))));
  ExpectEquivalentRewrite("cross-factor-addunion", f);
}

TEST_F(RulesTest, Rule3RelCrossCommutes) {
  ValuePtr l = S({Value::Tuple({"a"}, {I(1)})});
  ValuePtr r = S({Value::Tuple({"b"}, {I(2)}), Value::Tuple({"b"}, {I(3)})});
  ExprPtr e = RelCross(Const(l), Const(r));
  // Record-style tuple equality makes the flipped product equal.
  ExpectEquivalentRewrite("relcross-commute", e);
}

TEST_F(RulesTest, Rule4DisjunctiveSelectionSplits) {
  ValuePtr data = S({I(1), I(2), I(3), I(4), I(4)});
  ExprPtr e = Select(Predicate::Or(Lt(Input(), IntLit(2)),
                                   Gt(Input(), IntLit(3))),
                     Const(data));
  ExpectEquivalentRewrite("split-disjunctive-selection", e);
}

TEST_F(RulesTest, Rule5EliminatesCrossUnderDe) {
  ValuePtr a = S({Value::Tuple({"x"}, {I(1)}), Value::Tuple({"x"}, {I(2)})});
  ValuePtr b = S({I(7), I(8), I(9)});  // non-empty, as the rule assumes
  ExprPtr e = DupElim(SetApply(TupExtract("x", TupExtract("_1", Input())),
                               Cross(Const(a), Const(b))));
  ExpectEquivalentRewrite("eliminate-cross-under-de", e);
  // Declines when E touches both sides.
  ExprPtr both = DupElim(SetApply(
      Arith("+", TupExtract("x", TupExtract("_1", Input())),
            TupExtract("_2", Input())),
      Cross(Const(a), Const(b))));
  EXPECT_EQ(ApplyOnce("eliminate-cross-under-de", both), nullptr);
}

TEST_F(RulesTest, Rule5SymmetricSide) {
  ValuePtr a = S({I(1), I(2)});
  ValuePtr b = S({Value::Tuple({"y"}, {I(5)}), Value::Tuple({"y"}, {I(5)})});
  ExprPtr e = DupElim(SetApply(TupExtract("y", TupExtract("_2", Input())),
                               Cross(Const(a), Const(b))));
  ExpectEquivalentRewrite("eliminate-cross-under-de", e);
}

TEST_F(RulesTest, Rule6DeOfGroupIsGroup) {
  ExprPtr e = DupElim(Group(Arith("%", Input(), IntLit(2)),
                            Const(S({I(1), I(2), I(3), I(3)}))));
  ExpectEquivalentRewrite("de-of-group-is-group", e);
}

TEST_F(RulesTest, Rule7DeDistributesOverCross) {
  ExprPtr e = DupElim(Cross(Const(S({I(1), I(1), I(2)})),
                            Const(S({I(5), I(5)}))));
  ExpectEquivalentRewrite("distribute-de-over-cross", e);
}

TEST_F(RulesTest, Rule8DeBeforeGroup) {
  ValuePtr data = S({I(1), I(1), I(2), I(3), I(3), I(3)});
  ExprPtr e = SetApply(DupElim(Input()),
                       Group(Arith("%", Input(), IntLit(2)), Const(data)));
  ExpectEquivalentRewrite("de-before-group", e);
  // The rewrite is the Figure 7 shape: GRP over DE.
  ExprPtr rewritten = ApplyOnce("de-before-group", e);
  EXPECT_EQ(rewritten->kind(), OpKind::kGroup);
  EXPECT_EQ(rewritten->child(0)->kind(), OpKind::kDupElim);
}

TEST_F(RulesTest, Rule9GroupOfOneSidedCross) {
  ASSERT_TRUE(db_.CreateNamed("B", Schema::Set(IntSchema()),
                              S({I(7), I(8)}))
                  .ok());
  ValuePtr a = S({Value::Tuple({"k"}, {I(1)}), Value::Tuple({"k"}, {I(1)}),
                  Value::Tuple({"k"}, {I(2)})});
  ExprPtr e = Group(TupExtract("k", TupExtract("_1", Input())),
                    Cross(Const(a), Var("B")));
  ExpectEquivalentRewrite("group-cross-one-sided", e);
  // Declines when the replicated side is an arbitrary expression.
  ExprPtr expensive = Group(TupExtract("k", TupExtract("_1", Input())),
                            Cross(Const(a), DupElim(Var("B"))));
  EXPECT_EQ(ApplyOnce("group-cross-one-sided", expensive), nullptr);
}

TEST_F(RulesTest, Rule10SelectionBeforeGroupModuloEmptyGroups) {
  // Data chosen so no group is entirely filtered away: then the
  // equivalence is exact.
  ValuePtr data = S({I(1), I(2), I(3), I(4)});
  ExprPtr e = SetApply(Select(Gt(Input(), IntLit(1)), Input()),
                       Group(Arith("%", Input(), IntLit(2)), Const(data)));
  ExpectEquivalentRewrite("selection-before-group", e);
}

TEST_F(RulesTest, Rule10EmptyGroupCaveat) {
  // When the selection empties a whole group, the two sides differ by that
  // empty group — the caveat documented in DESIGN.md.
  ValuePtr data = S({I(1), I(3), I(4)});
  ExprPtr lhs = SetApply(Select(Eq(Input(), IntLit(4)), Input()),
                         Group(Arith("%", Input(), IntLit(2)), Const(data)));
  ExprPtr rhs = ApplyOnce("selection-before-group", lhs);
  ASSERT_NE(rhs, nullptr);
  ValuePtr l = Eval(lhs);
  ValuePtr r = Eval(rhs);
  // LHS keeps the emptied odd group; RHS drops it.
  EXPECT_EQ(l->TotalCount(), 2);
  EXPECT_EQ(r->TotalCount(), 1);
  EXPECT_EQ(l->CountOf(Value::EmptySet()), 1);
}

TEST_F(RulesTest, Rule11CollapseDistributes) {
  ValuePtr a = S({S({I(1)}), S({I(2), I(2)})});
  ValuePtr b = S({S({I(3)})});
  ExprPtr e = SetCollapse(AddUnion(Const(a), Const(b)));
  ExpectEquivalentRewrite("collapse-distributes-over-addunion", e);
}

TEST_F(RulesTest, Rule12ApplyDistributesAndFactors) {
  ValuePtr a = S({I(1), I(2)});
  ValuePtr b = S({I(2), I(3)});
  ExprPtr dist = SetApply(Arith("*", Input(), IntLit(2)),
                          AddUnion(Const(a), Const(b)));
  ExpectEquivalentRewrite("apply-distributes-over-addunion", dist);
  ExprPtr fact = AddUnion(SetApply(Arith("*", Input(), IntLit(2)), Const(a)),
                          SetApply(Arith("*", Input(), IntLit(2)), Const(b)));
  ExpectEquivalentRewrite("apply-factor-addunion", fact);
}

TEST_F(RulesTest, Rule13ApplySplitsOverCross) {
  ValuePtr a = S({Value::Tuple({"x", "junk"}, {I(1), I(9)}),
                  Value::Tuple({"x", "junk"}, {I(2), I(9)})});
  ValuePtr b = S({Value::Tuple({"y", "junk2"}, {I(5), I(8)})});
  // π pushdown into both inputs of the product.
  ExprPtr e = SetApply(
      TupCat(Project({"x"}, TupExtract("_1", Input())),
             Project({"y"}, TupExtract("_2", Input()))),
      Cross(Const(a), Const(b)));
  ExpectEquivalentRewrite("apply-distributes-over-cross", e);
  // The trivial flatten form must NOT fire (would loop).
  ExprPtr flat = RelCross(Const(a), Const(b));
  EXPECT_EQ(ApplyOnce("apply-distributes-over-cross", flat), nullptr);
}

TEST_F(RulesTest, Rule14ApplyInsideCollapse) {
  ValuePtr a = S({S({I(1), I(2)}), S({I(3)})});
  ExprPtr push = SetApply(Arith("+", Input(), IntLit(10)),
                          SetCollapse(Const(a)));
  ExpectEquivalentRewrite("push-apply-inside-collapse", push);
  ExprPtr pull = SetCollapse(SetApply(
      SetApply(Arith("+", Input(), IntLit(10)), Input()), Const(a)));
  ExpectEquivalentRewrite("pull-apply-out-of-collapse", pull);
}

TEST_F(RulesTest, Rule15CombinesSetApplys) {
  ValuePtr a = S({I(1), I(2), I(3)});
  ExprPtr e = SetApply(Arith("*", Input(), IntLit(3)),
                       SetApply(Arith("+", Input(), IntLit(1)), Const(a)));
  ExpectEquivalentRewrite("combine-set-applys", e);
  ExprPtr rewritten = ApplyOnce("combine-set-applys", e);
  // One scan, composed subscript.
  EXPECT_EQ(rewritten->child(0)->kind(), OpKind::kConst);
}

TEST_F(RulesTest, Rule15ExactWithDneProducingInner) {
  // The inner subscript produces dne for some elements (COMP); the
  // composed pipeline must agree thanks to null propagation.
  ValuePtr a = S({I(1), I(2), I(3), I(4)});
  ExprPtr e = SetApply(
      Arith("*", Input(), IntLit(10)),
      SetApply(Comp(Gt(Input(), IntLit(2)), Input()), Const(a)));
  ExpectEquivalentRewrite("combine-set-applys", e);
}

TEST_F(RulesTest, IdentityCleanups) {
  ValuePtr a = S({I(1)});
  ExprPtr id = SetApply(Input(), Const(a));
  ExpectEquivalentRewrite("apply-identity-elim", id);
  ExprPtr ct = Comp(Predicate::True(), Const(a));
  ExpectEquivalentRewrite("comp-true-elim", ct);
}

TEST_F(RulesTest, Rule16ArrCatAssociativity) {
  auto arr = [](std::vector<ValuePtr> v) {
    return Const(Value::ArrayOf(std::move(v)));
  };
  ExprPtr e = ArrCat(arr({I(1)}), ArrCat(arr({I(2)}), arr({I(3)})));
  ExpectEquivalentRewrite("arrcat-assoc-left", e);
}

TEST_F(RulesTest, Rule17ExtractFromCatNeedsStaticLength) {
  ASSERT_TRUE(db_.CreateNamed("F3",
                              Schema::FixedArr(IntSchema(), 3),
                              Value::ArrayOf({I(1), I(2), I(3)}))
                  .ok());
  ASSERT_TRUE(db_.CreateNamed("F2",
                              Schema::FixedArr(IntSchema(), 2),
                              Value::ArrayOf({I(8), I(9)}))
                  .ok());
  // Index in the left part.
  ExpectEquivalentRewrite("extract-from-arrcat",
                          ArrExtract(2, ArrCat(Var("F3"), Var("F2"))));
  // Index in the right part.
  ExpectEquivalentRewrite("extract-from-arrcat",
                          ArrExtract(5, ArrCat(Var("F3"), Var("F2"))));
  // Variable-length left input: no static size, no rewrite.
  ASSERT_TRUE(db_.CreateNamed("V", Schema::Arr(IntSchema()),
                              Value::ArrayOf({I(1)}))
                  .ok());
  EXPECT_EQ(ApplyOnce("extract-from-arrcat",
                      ArrExtract(1, ArrCat(Var("V"), Var("F2")))),
            nullptr);
}

TEST_F(RulesTest, Rule18ExtractFromSubarr) {
  ExprPtr arr = Const(Value::ArrayOf({I(1), I(2), I(3), I(4), I(5)}));
  ExpectEquivalentRewrite("extract-from-subarr",
                          ArrExtract(2, SubArr(2, 4, arr)));
  // Out-of-slice position must not rewrite (LHS is dne, RHS would not be).
  EXPECT_EQ(
      ApplyOnce("extract-from-subarr", ArrExtract(4, SubArr(2, 4, arr))),
      nullptr);
}

TEST_F(RulesTest, Rule19ExtractThroughArrApply) {
  ExprPtr arr = Const(Value::ArrayOf({I(1), I(2), I(3)}));
  ExprPtr e = ArrExtract(2, ArrApply(Arith("*", Input(), IntLit(5)), arr));
  ExpectEquivalentRewrite("extract-through-arrapply", e);
  // `last` works too.
  ExpectEquivalentRewrite(
      "extract-through-arrapply",
      ArrExtractLast(ArrApply(Arith("*", Input(), IntLit(5)), arr)));
  // COMP inside the subscript blocks the rule (dne drops shift indices).
  ExprPtr blocked = ArrExtract(
      1, ArrApply(Comp(Gt(Input(), IntLit(1)), Input()), arr));
  EXPECT_EQ(ApplyOnce("extract-through-arrapply", blocked), nullptr);
}

TEST_F(RulesTest, Rule20CombineSubarrs) {
  ExprPtr arr = Const(Value::ArrayOf({I(1), I(2), I(3), I(4), I(5), I(6)}));
  ExpectEquivalentRewrite("combine-subarrs", SubArr(2, 3, SubArr(2, 5, arr)));
  // Outer range exceeding the inner one clamps identically.
  ExpectEquivalentRewrite("combine-subarrs", SubArr(2, 9, SubArr(2, 4, arr)));
}

TEST_F(RulesTest, Rule21SubarrFromCat) {
  ASSERT_TRUE(db_.CreateNamed("G3",
                              Schema::FixedArr(IntSchema(), 3),
                              Value::ArrayOf({I(1), I(2), I(3)}))
                  .ok());
  ASSERT_TRUE(db_.CreateNamed("G2",
                              Schema::FixedArr(IntSchema(), 2),
                              Value::ArrayOf({I(8), I(9)}))
                  .ok());
  // Straddling slice.
  ExpectEquivalentRewrite("subarr-from-arrcat",
                          SubArr(2, 4, ArrCat(Var("G3"), Var("G2"))));
  // Entirely within the left part.
  ExpectEquivalentRewrite("subarr-from-arrcat",
                          SubArr(1, 2, ArrCat(Var("G3"), Var("G2"))));
  // Entirely within the right part.
  ExpectEquivalentRewrite("subarr-from-arrcat",
                          SubArr(4, 5, ArrCat(Var("G3"), Var("G2"))));
}

TEST_F(RulesTest, Rule22SubarrBeforeArrApply) {
  ExprPtr arr = Const(Value::ArrayOf({I(1), I(2), I(3), I(4)}));
  ExprPtr e = SubArr(2, 3, ArrApply(Arith("*", Input(), IntLit(2)), arr));
  ExpectEquivalentRewrite("subarr-before-arrapply", e);
  ExprPtr blocked =
      SubArr(1, 2, ArrApply(Comp(Gt(Input(), IntLit(2)), Input()), arr));
  EXPECT_EQ(ApplyOnce("subarr-before-arrapply", blocked), nullptr);
}

TEST_F(RulesTest, Rule23TupCatCommutes) {
  ExprPtr e = TupCat(Const(Value::Tuple({"a"}, {I(1)})),
                     Const(Value::Tuple({"b"}, {I(2)})));
  ExpectEquivalentRewrite("tupcat-commute", e);
}

TEST_F(RulesTest, Rule24ProjectDistributesOverTupCat) {
  ExprPtr e = Project({"b", "a"},
                      TupCat(Const(Value::Tuple({"a", "x"}, {I(1), I(3)})),
                             Const(Value::Tuple({"b"}, {I(2)}))));
  ExpectEquivalentRewrite("project-distributes-over-tupcat", e);
  // Ambiguous provenance (same name on both sides) declines.
  ExprPtr dup = Project({"a"},
                        TupCat(Const(Value::Tuple({"a"}, {I(1)})),
                               Const(Value::Tuple({"a"}, {I(2)}))));
  EXPECT_EQ(ApplyOnce("project-distributes-over-tupcat", dup), nullptr);
}

TEST_F(RulesTest, Rule25ExtractFromTupCat) {
  ExprPtr e = TupExtract("a",
                         TupCat(Const(Value::Tuple({"a"}, {I(1)})),
                                Const(Value::Tuple({"b"}, {I(2)}))));
  ExpectEquivalentRewrite("extract-from-tupcat", e);
  // Field on the right side.
  ExprPtr r = TupExtract("b",
                         TupCat(Const(Value::Tuple({"a"}, {I(1)})),
                                Const(Value::Tuple({"b"}, {I(2)}))));
  ExpectEquivalentRewrite("extract-from-tupcat", r);
}

TEST_F(RulesTest, ExtractFromTupMakeCollapses) {
  // TUP_EXTRACT_v(TUP_v(x)) = x — the translator's environment plumbing.
  ExprPtr e = TupExtract("v", TupMakeNamed("v", Arith("+", IntLit(1),
                                                      IntLit(2))));
  ExpectEquivalentRewrite("extract-from-tupmake", e);
  // A mismatched field must NOT fire (the original is a runtime error).
  ExprPtr bad = TupExtract("w", TupMakeNamed("v", IntLit(1)));
  EXPECT_EQ(ApplyOnce("extract-from-tupmake", bad), nullptr);
  // Default field name "_1".
  ExpectEquivalentRewrite("extract-from-tupmake",
                          TupExtract("_1", TupMake(IntLit(9))));
}

TEST_F(RulesTest, Rule27CombinesComps) {
  ValuePtr t = Value::Tuple({"x", "y"}, {I(5), I(2)});
  ExprPtr e = Comp(Gt(TupExtract("x", Input()), IntLit(1)),
                   Comp(Lt(TupExtract("y", Input()), IntLit(9)), Const(t)));
  ExpectEquivalentRewrite("combine-comps", e);
  // Also when the inner predicate fails: both sides dne.
  ExprPtr f = Comp(Gt(TupExtract("x", Input()), IntLit(1)),
                   Comp(Lt(TupExtract("y", Input()), IntLit(0)), Const(t)));
  ExpectEquivalentRewrite("combine-comps", f);
}

TEST_F(RulesTest, Rule28RefDerefInvertibility) {
  ASSERT_TRUE(db_.catalog().DefineType("Obj", Schema::Tup({{"v", IntSchema()}}))
                  .ok());
  ValuePtr payload = Value::Tuple({"v"}, {I(42)}, "Obj");
  ExprPtr deref_ref = Deref(RefOp(Const(payload), "Obj"));
  ExpectEquivalentRewrite("deref-of-ref", deref_ref);
  // REF(DEREF(r)) = r for an interned/created object. A *distinct* payload
  // is used: rule 28's identity holds up to value-interned identity, so an
  // equal-valued object interned earlier would win (see DESIGN.md).
  ValuePtr payload2 = Value::Tuple({"v"}, {I(43)}, "Obj");
  auto oid = db_.store().Create("Obj", payload2);
  ASSERT_TRUE(oid.ok());
  ExprPtr ref_deref = RefOp(Deref(Const(Value::RefTo(*oid))), "Obj");
  ExpectEquivalentRewrite("ref-of-deref", ref_deref);
}

TEST_F(RulesTest, Rule26PushEnrichmentIntoComp) {
  // The Figure 9 -> Figure 11 pipeline: a selection predicate and a
  // grouping key share DEREF(dept); after the rewrite the deref happens
  // once, inside the COMP's pushed expression.
  Catalog& cat = db_.catalog();
  ASSERT_TRUE(cat.DefineType("Dept",
                             Schema::Tup({{"division", StringSchema()},
                                          {"floor", IntSchema()}}))
                  .ok());
  std::vector<ValuePtr> studs;
  for (int i = 0; i < 12; ++i) {
    ValuePtr dept = Value::Tuple(
        {"division", "floor"},
        {Value::Str(i % 2 ? "eng" : "arts"), I(1 + i % 3)}, "Dept");
    auto oid = db_.store().Create("Dept", dept);
    ASSERT_TRUE(oid.ok());
    studs.push_back(Value::Tuple(
        {"name", "dept"},
        {Value::Str(StrCat("s", i)), Value::RefTo(*oid)}));
  }
  ASSERT_TRUE(db_.CreateNamed(
                    "S",
                    Schema::Set(Schema::Tup({{"name", StringSchema()},
                                             {"dept", Schema::Ref("Dept")}})),
                    S(studs))
                  .ok());
  ExprPtr shared_deref = Deref(TupExtract("dept", Input()));
  // Figure 9 after rule 10: π within groups over GRP(division) of
  // σ(floor = 1).
  ExprPtr fig = SetApply(
      SetApply(Project({"name"}, Input()), Input()),
      Group(TupExtract("division", shared_deref),
            Select(Eq(TupExtract("floor", shared_deref), IntLit(1)),
                   Var("S"))));
  ExprPtr rewritten = ApplyOnce("push-enrichment-into-comp", fig);
  ASSERT_NE(rewritten, nullptr);
  ValuePtr before = Eval(fig);
  ValuePtr after = Eval(rewritten);
  EXPECT_TRUE(before->Equals(*after))
      << "before: " << before->ToString() << "\nafter: " << after->ToString();

  // Deref accounting: the original pipeline derefs in both the selection
  // and the grouping key; the rewritten one only in the enrichment.
  Evaluator ev1(&db_);
  ASSERT_TRUE(ev1.Eval(fig).ok());
  Evaluator ev2(&db_);
  ASSERT_TRUE(ev2.Eval(rewritten).ok());
  EXPECT_LT(ev2.stats().derefs, ev1.stats().derefs);
}

TEST_F(RulesTest, HeuristicFixpointTerminatesAndPreserves) {
  // A deliberately redundant pipeline: chained SET_APPLYs, stacked COMPs,
  // REF/DEREF pair — the heuristic phase should collapse all of it.
  ValuePtr a = S({I(1), I(2), I(3), I(4), I(5), I(6)});
  ExprPtr messy = SetApply(
      Arith("+", Input(), IntLit(0)),
      SetApply(Comp(Gt(Input(), IntLit(1)), Input()),
               SetApply(Comp(Lt(Input(), IntLit(6)), Input()),
                        SetApply(Input(), Const(a)))));
  Rewriter rw(&db_, RuleSet::Heuristic());
  auto rewritten = rw.Rewrite(messy);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_FALSE(rw.applied().empty());
  EXPECT_LT((*rewritten)->NodeCount(), messy->NodeCount());
  EXPECT_TRUE(Eval(messy)->Equals(*Eval(*rewritten)));
}

}  // namespace
}  // namespace excess
