// The cost model's structural properties: monotonicity, parameter
// sensitivity, and the liveness discount that credits fused pipelines for
// work skipped by null propagation (regression for the Figure 9-11
// planner behavior).

#include "core/cost.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<ValuePtr> elems;
    for (int i = 0; i < 100; ++i) {
      elems.push_back(Value::Tuple({"x"}, {I(i)}));
    }
    ASSERT_TRUE(db_.CreateNamed("S",
                                Schema::Set(Schema::Tup({{"x", IntSchema()}})),
                                Value::SetOf(elems))
                    .ok());
  }
  CostEstimate Est(const ExprPtr& e, CostParams params = CostParams()) {
    CostModel model(&db_, params);
    auto r = model.Estimate(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : CostEstimate{};
  }
  Database db_;
};

TEST_F(CostTest, RootCardinalityIsExact) {
  EXPECT_DOUBLE_EQ(Est(Var("S")).cardinality, 100);
  EXPECT_DOUBLE_EQ(Est(Const(Value::SetOf({I(1), I(1)}))).cardinality, 2);
  EXPECT_DOUBLE_EQ(Est(IntLit(3)).cardinality, 1);
}

TEST_F(CostTest, MoreWorkCostsMore) {
  ExprPtr scan = SetApply(TupExtract("x", Input()), Var("S"));
  ExprPtr scan_twice = SetApply(Arith("+", Input(), IntLit(1)), scan);
  EXPECT_GT(Est(scan).total, Est(Var("S")).total);
  EXPECT_GT(Est(scan_twice).total, Est(scan).total);
  ExprPtr big = Cross(Var("S"), Var("S"));
  EXPECT_GT(Est(big).cardinality, Est(scan).cardinality);
  EXPECT_GT(Est(big).total, Est(scan).total);
}

TEST_F(CostTest, SelectivityShrinksDownstreamEstimates) {
  ExprPtr filtered = Select(Gt(TupExtract("x", Input()), IntLit(50)),
                            Var("S"));
  CostParams loose;
  loose.selectivity = 0.9;
  CostParams tight;
  tight.selectivity = 0.01;
  EXPECT_GT(Est(filtered, loose).cardinality,
            Est(filtered, tight).cardinality);
  // A group over the filtered set inherits the smaller input.
  ExprPtr grouped = Group(TupExtract("x", Input()), filtered);
  EXPECT_GT(Est(grouped, loose).total, Est(grouped, tight).total);
}

TEST_F(CostTest, LivenessDiscountsWorkBehindComp) {
  // deref(COMP(x)) must cost less than deref(x): the deref only happens
  // for elements the predicate passed (uniform null propagation).
  ExprPtr plain = Deref(Input());
  ExprPtr guarded = Deref(Comp(Predicate::True(), Input()));
  CostParams p;
  p.deref_cost = 100;
  p.selectivity = 0.1;
  // Estimate as subscripts: wrap in SET_APPLY so per-element costs count.
  ExprPtr plan_plain = SetApply(plain, Var("S"));
  ExprPtr plan_guarded = SetApply(guarded, Var("S"));
  EXPECT_LT(Est(plan_guarded, p).total, Est(plan_plain, p).total);
  // And the liveness shrinks multiplicatively through stacked COMPs.
  ExprPtr doubled = SetApply(
      Deref(Comp(Predicate::True(), Comp(Predicate::True(), Input()))),
      Var("S"));
  EXPECT_LT(Est(doubled, p).total, Est(plan_guarded, p).total);
}

TEST_F(CostTest, DerefWeightIsTunable) {
  ExprPtr q = SetApply(Deref(Input()), Var("S"));
  CostParams cheap;
  cheap.deref_cost = 1;
  CostParams pricey;
  pricey.deref_cost = 500;
  EXPECT_GT(Est(q, pricey).total, Est(q, cheap).total);
}

TEST_F(CostTest, CollectionOutputsResetLiveness) {
  // A multiset built from a COMP-bearing subscript has live = 1 (dne
  // occurrences were dropped at construction).
  ExprPtr filtered = Select(Predicate::True(), Var("S"));
  EXPECT_DOUBLE_EQ(Est(filtered).live, 1.0);
  // Scalar pipelines report shrunken liveness.
  CostModel model(&db_);
  auto guarded = model.Estimate(Comp(Predicate::True(), IntLit(1)));
  ASSERT_TRUE(guarded.ok());
  EXPECT_LT(guarded->live, 1.0);
}

TEST_F(CostTest, UnknownNamesStillEstimate) {
  // Var over a missing object estimates conservatively instead of failing
  // (the planner may cost partially-bound trees).
  auto est = Est(Var("Missing"));
  EXPECT_GE(est.cardinality, 1);
}

}  // namespace
}  // namespace excess
