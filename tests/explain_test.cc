// EXPLAIN / EXPLAIN ANALYZE:
//  - golden-file JSON for the figure plans (estimates-only ExplainPlan; the
//    university generator is seeded, so the trees and estimates are stable).
//    Regenerate with EXCESS_UPDATE_GOLDEN=1 after an intentional change.
//  - ANALYZE consistency on Figures 6-11: per-node actuals recorded in a
//    PlanProfile must reconcile exactly with EvalStats (same checkpoint by
//    construction) and the root's out_occurrences with the result value.
//  - the `explain` statement surface through Session: rendering, trace,
//    JSON mode, last_explain(), and the never-commits guarantee of
//    `explain analyze` on append/delete.

#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/support.h"
#include "core/eval.h"
#include "core/expr.h"
#include "core/physical.h"
#include "excess/session.h"
#include "gtest/gtest.h"
#include "obs/explain.h"
#include "university/university.h"

namespace excess {
namespace {

using bench::Fig10Plan;
using bench::Fig11Plan;
using bench::Fig6Plan;
using bench::Fig8Plan;
using bench::Fig9Plan;

// --- golden files -----------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(EXCESS_GOLDEN_DIR) + "/" + name + ".json";
}

bool UpdateGolden() { return std::getenv("EXCESS_UPDATE_GOLDEN") != nullptr; }

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateGolden()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " (run with EXCESS_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string expected = ss.str();
  // The update path appends one trailing newline; tolerate exactly that.
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  EXPECT_EQ(expected, actual)
      << "EXPLAIN JSON for " << name << " drifted from " << path
      << " — if the change is intentional, regenerate with "
      << "EXCESS_UPDATE_GOLDEN=1 and review the diff";
}

class ExplainFigureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The qualitative fixture of bench_fig6_8: advisor-as-name so the
    // Example 1 join applies; Figures 9-11 only touch dept/floor/division
    // and run on the same database.
    UniversityParams p;
    p.num_departments = 5;
    p.num_employees = 50;
    p.num_students = 100;
    p.num_floors = 5;
    p.advisor_as_name = true;
    p.duplication = 3;
    ASSERT_TRUE(BuildUniversity(&db_, p).ok());
  }

  Database db_;
};

TEST_F(ExplainFigureTest, GoldenJson) {
  const std::vector<std::pair<std::string, ExprPtr>> plans = {
      {"explain_fig6", Fig6Plan()},
      {"explain_fig8", Fig8Plan()},
      {"explain_fig9", Fig9Plan(1)},
      {"explain_fig11", Fig11Plan(1)},
      {"explain_fig6_hash", LowerPhysical(Fig6Plan())},
  };
  for (const auto& [name, plan] : plans) {
    obs::ExplainReport report = obs::ExplainPlan(&db_, plan, CostParams(), name);
    CheckGolden(name, report.ToJson());
  }
}

TEST_F(ExplainFigureTest, GoldenJsonIsStableAcrossCalls) {
  // The serialization itself must be deterministic, or golden comparisons
  // (and CI artifact diffs) are meaningless.
  ExprPtr plan = Fig8Plan();
  std::string a = obs::ExplainPlan(&db_, plan).ToJson();
  std::string b = obs::ExplainPlan(&db_, Fig8Plan()).ToJson();
  EXPECT_EQ(a, b);
}

TEST_F(ExplainFigureTest, FigurePlansAreIndexNeutral) {
  // The golden figure plans must not depend on the secondary-index
  // subsystem: with no index covering a figure's access paths, the
  // index-aware lowering overload is contractually byte-identical to the
  // plain one (core/physical.h), so the archived PLAN_*.json trees stay
  // reproductions of the paper's plans. An index on an unrelated path
  // must not change that.
  ASSERT_TRUE(
      db_.CreateIndex({"unrelated", "Employees", {"ssnum"}, IndexKind::kHash})
          .ok());
  const std::vector<std::pair<std::string, ExprPtr>> plans = {
      {"fig6", Fig6Plan()},
      {"fig8", Fig8Plan()},
      {"fig9", Fig9Plan(1)},
      {"fig11", Fig11Plan(1)},
  };
  for (const auto& [name, plan] : plans) {
    SCOPED_TRACE(name);
    EXPECT_EQ(LowerPhysical(plan)->ToString(),
              LowerPhysical(plan, &db_, CostParams())->ToString());
  }
}

// Runs `plan` under a profile and asserts the EXPLAIN ANALYZE invariants:
// per-OpKind sums over the profile equal the EvalStats columns (invocations,
// occurrences, self-nanos), and the root node's out_occurrences equals the
// occurrence count of the result value.
void CheckAnalyzeConsistency(Database* db, const ExprPtr& plan,
                             const char* what) {
  SCOPED_TRACE(what);
  Evaluator ev(db);
  PlanProfile profile;
  ev.set_profile(&profile);
  ev.set_timing_enabled(true);
  auto r = ev.Eval(plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EvalStats& stats = ev.stats();

  std::array<int64_t, kNumOpKinds> inv{}, occ{}, nanos{};
  for (const auto& [node, prof] : profile.nodes()) {
    inv[static_cast<int>(node->kind())] += prof.invocations;
    occ[static_cast<int>(node->kind())] += prof.occurrences_in;
    nanos[static_cast<int>(node->kind())] += prof.self_nanos;
  }
  for (int k = 0; k < kNumOpKinds; ++k) {
    OpKind kind = static_cast<OpKind>(k);
    EXPECT_EQ(inv[k], stats.InvocationsOf(kind))
        << "invocations diverge for " << OpKindToString(kind);
    EXPECT_EQ(occ[k], stats.OccurrencesOf(kind))
        << "occurrences diverge for " << OpKindToString(kind);
    EXPECT_EQ(nanos[k], stats.NanosOf(kind))
        << "self-nanos diverge for " << OpKindToString(kind);
  }

  const ValuePtr& v = *r;
  int64_t expect = v->is_set()     ? v->TotalCount()
                   : v->is_array() ? v->ArrayLength()
                                   : 1;
  const NodeProfile* root = profile.Find(plan.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->invocations, 1);
  EXPECT_EQ(root->out_occurrences, expect);

  // AnnotatePlan surfaces the same numbers on the rendered tree.
  obs::ExplainNode tree = obs::AnnotatePlan(db, plan, CostParams(), &profile);
  EXPECT_EQ(tree.act_invocations, 1);
  EXPECT_EQ(tree.act_out_occurrences, expect);
}

TEST_F(ExplainFigureTest, AnalyzeConsistencyFigures6To11) {
  CheckAnalyzeConsistency(&db_, Fig6Plan(), "fig6");
  CheckAnalyzeConsistency(&db_, bench::Fig7Plan(), "fig7");
  CheckAnalyzeConsistency(&db_, Fig8Plan(), "fig8");
  CheckAnalyzeConsistency(&db_, Fig9Plan(1), "fig9");
  CheckAnalyzeConsistency(&db_, Fig10Plan(1), "fig10");
  CheckAnalyzeConsistency(&db_, Fig11Plan(1), "fig11");
  // The physical lowering exercises HASH_JOIN's key binders and predicate
  // re-evaluation under the same accounting.
  CheckAnalyzeConsistency(&db_, LowerPhysical(Fig6Plan()), "fig6_hash");
}

// --- the explain statement through Session ----------------------------------

class ExplainSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UniversityParams p;
    p.num_departments = 5;
    p.num_employees = 40;
    p.num_students = 30;
    p.num_floors = 5;
    ASSERT_TRUE(BuildUniversity(&db_, p).ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    session_ = std::make_unique<Session>(&db_, registry_.get());
  }

  std::string Run(const std::string& q) {
    auto r = session_->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << q;
    if (!r.ok() || *r == nullptr) return "";
    EXPECT_EQ((*r)->kind(), ValueKind::kString)
        << "explain result should be a rendering";
    return (*r)->kind() == ValueKind::kString ? (*r)->as_string() : "";
  }

  int64_t CountOf(const std::string& name) {
    auto v = db_.NamedValue(name);
    EXPECT_TRUE(v.ok());
    return v.ok() ? (*v)->TotalCount() : -1;
  }

  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExplainSessionTest, ExplainRendersBothPlans) {
  std::string out =
      Run("explain retrieve (e.name) from e in Employees where "
          "e.city = \"city_0\"");
  EXPECT_NE(out.find("EXPLAIN"), std::string::npos) << out;
  EXPECT_NE(out.find("logical plan:"), std::string::npos) << out;
  EXPECT_NE(out.find("physical plan:"), std::string::npos) << out;
  EXPECT_NE(out.find("SET_APPLY"), std::string::npos) << out;
  EXPECT_NE(out.find("est "), std::string::npos) << out;
  // Not analyzed: no actuals anywhere.
  EXPECT_EQ(out.find("[act "), std::string::npos) << out;

  auto report = session_->last_explain();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->optimized);
  EXPECT_FALSE(report->analyzed);
  EXPECT_EQ(report->result_occurrences, -1);
}

TEST_F(ExplainSessionTest, TraceRecordsRuleFirings) {
  // The Figure 4 shape: a chain of SET_APPLYs the heuristic fuses with
  // combine-set-applys (paper rule 15).
  std::string out =
      Run("explain (trace) retrieve (e.name) from e in Employees where "
          "e.city = \"city_0\"");
  auto report = session_->last_explain();
  ASSERT_NE(report, nullptr);
  ASSERT_FALSE(report->trace.empty()) << out;
  bool fused = false;
  for (const auto& step : report->trace) {
    if (step.rule == "combine-set-applys") {
      fused = true;
      EXPECT_EQ(step.paper_id, 15);
      EXPECT_EQ(step.phase, "heuristic");
    }
  }
  EXPECT_TRUE(fused) << out;
  EXPECT_NE(out.find("rewrite trace"), std::string::npos) << out;
  EXPECT_NE(out.find("combine-set-applys"), std::string::npos) << out;
}

TEST_F(ExplainSessionTest, AnalyzeMatchesDirectExecution) {
  const std::string q =
      "retrieve (s.name) from s in Students where s.gpa > 2.0";
  auto direct = session_->Execute(q);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  int64_t expect = (*direct)->TotalCount();

  std::string out = Run("explain analyze " + q);
  EXPECT_NE(out.find("[act "), std::string::npos) << out;
  EXPECT_NE(out.find("actual: wall="), std::string::npos) << out;

  auto report = session_->last_explain();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->analyzed);
  EXPECT_EQ(report->result_occurrences, expect);
  EXPECT_EQ(report->physical.act_out_occurrences, expect);
  EXPECT_EQ(report->physical.act_invocations, 1);
  EXPECT_GE(report->wall_nanos, 0);
}

TEST_F(ExplainSessionTest, JsonModeEmitsSchemaVersion1) {
  std::string out =
      Run("explain analyze (json, trace) retrieve (s.name) from s in "
          "Students");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{') << out;
  EXPECT_EQ(out.back(), '}') << out;
  EXPECT_NE(out.find("\"version\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"logical\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"physical\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"trace\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"analyzed\": true"), std::string::npos) << out;
}

TEST_F(ExplainSessionTest, AnalyzeNeverCommitsUpdates) {
  ASSERT_TRUE(session_->Execute("create Nums: { int4 }").ok());
  ASSERT_TRUE(session_->Execute("append all {1, 2, 3} to Nums").ok());
  ASSERT_EQ(CountOf("Nums"), 3);

  Run("explain analyze append 9 to Nums");
  EXPECT_EQ(CountOf("Nums"), 3) << "explain analyze append committed";

  Run("explain analyze delete Nums where Nums >= 2");
  EXPECT_EQ(CountOf("Nums"), 3) << "explain analyze delete committed";

  // The real statements still work afterwards.
  ASSERT_TRUE(session_->Execute("append 9 to Nums").ok());
  EXPECT_EQ(CountOf("Nums"), 4);
}

}  // namespace
}  // namespace excess
