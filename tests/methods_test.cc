// §4: method definition, overriding under (multiple) inheritance, and the
// two algebraic dispatch strategies — run-time switch table vs the ⊎-based
// plan of Figure 5 — which must agree on every input.

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/eval.h"
#include "methods/dispatch.h"
#include "methods/registry.h"
#include "university/university.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

/// The paper's "boss" example: a Person is his own boss, a Student's boss
/// is the advisor, an Employee's boss is the manager.
ExprPtr PersonBossBody() { return TupExtract("name", Input()); }
ExprPtr StudentBossBody() {
  return TupExtract("name", Deref(TupExtract("advisor", Input())));
}
ExprPtr EmployeeBossBody() {
  return TupExtract("name", Deref(TupExtract("manager", Input())));
}

class MethodsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.num_employees = 30;
    params_.num_students = 20;
    ASSERT_TRUE(BuildUniversity(&db_, params_).ok());
    ASSERT_TRUE(AddMixedPersonSet(&db_, "P", 10, 8, 6, params_).ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    ASSERT_TRUE(registry_
                    ->Define({"Person", "boss", {}, StringSchema(),
                              PersonBossBody()})
                    .ok());
    ASSERT_TRUE(registry_
                    ->Define({"Student", "boss", {}, StringSchema(),
                              StudentBossBody()})
                    .ok());
    ASSERT_TRUE(registry_
                    ->Define({"Employee", "boss", {}, StringSchema(),
                              EmployeeBossBody()})
                    .ok());
  }

  ValuePtr Eval(const ExprPtr& e) {
    Evaluator ev(&db_, registry_.get());
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  UniversityParams params_;
  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
};

TEST_F(MethodsTest, DispatchFindsMostSpecific) {
  auto p = registry_->Dispatch("Person", "boss");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->type_name, "Person");
  auto s = registry_->Dispatch("Student", "boss");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->type_name, "Student");
  EXPECT_TRUE(registry_->Dispatch("Ghost", "boss").status().IsNotFound());
  EXPECT_TRUE(registry_->Dispatch("Person", "nope").status().IsNotFound());
}

TEST_F(MethodsTest, InheritedMethodWithoutOverride) {
  // A new subtype without its own boss() inherits Student's.
  ASSERT_TRUE(db_.catalog().DefineType("GradStudent", Schema::Tup({}),
                                       {"Student"})
                  .ok());
  auto g = registry_->Dispatch("GradStudent", "boss");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->type_name, "Student");
}

TEST_F(MethodsTest, MultipleInheritanceUsesDeclarationOrder) {
  ASSERT_TRUE(db_.catalog().DefineType("TA", Schema::Tup({}),
                                       {"Student", "Employee"})
                  .ok());
  // TA has no own boss(); Student (first parent) wins.
  auto ta = registry_->Dispatch("TA", "boss");
  ASSERT_TRUE(ta.ok());
  EXPECT_EQ((*ta)->type_name, "Student");
}

TEST_F(MethodsTest, SignatureMustMatchOnOverride) {
  Status st = registry_->Define(
      {"Student", "boss2", {"x"}, StringSchema(), PersonBossBody()});
  ASSERT_TRUE(st.ok());
  // Supertype later declares boss2 with a different arity: rejected.
  EXPECT_TRUE(registry_
                  ->Define({"Person", "boss2", {}, StringSchema(),
                            PersonBossBody()})
                  .IsTypeError());
  // Redefinition on the same type is rejected.
  EXPECT_EQ(registry_
                ->Define({"Person", "boss", {}, StringSchema(),
                          PersonBossBody()})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MethodsTest, DistinctImplementationsMergeSharedBodies) {
  // With GradStudent inheriting Student's body, only 3 distinct
  // implementations exist for 4 exact types.
  ASSERT_TRUE(db_.catalog().DefineType("GradStudent", Schema::Tup({}),
                                       {"Student"})
                  .ok());
  auto impls = registry_->DistinctImplementations("Person", "boss");
  ASSERT_TRUE(impls.ok());
  ASSERT_EQ(impls->size(), 3u);
  // Student's entry serves both Student and GradStudent.
  bool found = false;
  for (const auto& [owner, serves] : *impls) {
    if (owner == "Student") {
      EXPECT_EQ(serves,
                (std::vector<std::string>{"Student", "GradStudent"}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MethodsTest, SwitchTableAndUnionPlansAgree) {
  DispatchPlanner planner(&db_, registry_.get());
  auto a = planner.SwitchTablePlan(Var("P"), "boss");
  auto b = planner.UnionPlan(Var("P"), "Person", "boss");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ValuePtr va = Eval(*a);
  ValuePtr vb = Eval(*b);
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  EXPECT_TRUE(va->Equals(*vb)) << "switch: " << va->ToString()
                               << "\nunion: " << vb->ToString();
  EXPECT_EQ(va->TotalCount(), 24);  // 10 + 8 + 6 persons
}

TEST_F(MethodsTest, UnionPlanHasOneScanPerDistinctImplementation) {
  DispatchPlanner planner(&db_, registry_.get());
  auto plan = planner.UnionPlan(Var("P"), "Person", "boss");
  ASSERT_TRUE(plan.ok());
  // Count SET_APPLY nodes with type filters: one per implementation (3).
  int typed_scans = 0;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    if (e->kind() == OpKind::kSetApply && !e->type_filter().empty()) {
      ++typed_scans;
    }
    for (const auto& c : e->children()) walk(c);
  };
  walk(*plan);
  EXPECT_EQ(typed_scans, 3);
}

TEST_F(MethodsTest, UnionPlanOverRefCollection) {
  // Employees is a set of references; the union plan must deref receivers.
  DispatchPlanner planner(&db_, registry_.get());
  auto a = planner.SwitchTablePlan(Var("Employees"), "boss");
  auto b = planner.UnionPlan(Var("Employees"), "Employee", "boss");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(Eval(*a)->Equals(*Eval(*b)));
}

TEST_F(MethodsTest, ExtentPlanAgrees) {
  DispatchPlanner planner(&db_, registry_.get());
  auto base = planner.SwitchTablePlan(Var("P"), "boss");
  auto ext = planner.UnionPlanOverExtents("P", "Person", "boss");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_TRUE(Eval(*base)->Equals(*Eval(*ext)));
}

TEST_F(MethodsTest, ParameterizedMethod) {
  // The paper's get_ssnum(kname): ssnums of this employee's kids named
  // kname.
  ExprPtr body = SetApply(
      TupExtract("ssnum", Input()),
      SetApply(Comp(Eq(TupExtract("name", Input()), Param(0)), Input()),
               TupExtract("kids", Input())));
  ASSERT_TRUE(registry_
                  ->Define({"Employee", "get_ssnum", {"kname"},
                            Schema::Set(IntSchema()), body})
                  .ok());
  // Find an employee and one of his kids.
  ValuePtr employees = *db_.NamedValue("Employees");
  ValuePtr emp = *db_.store().Deref(employees->entries()[0].value->oid());
  ValuePtr kid = (*emp->Field("kids"))->entries()[0].value;
  ExprPtr call = MethodCall("get_ssnum", Const(emp),
                            {Const(*kid->Field("name"))});
  ValuePtr got = Eval(call);
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->is_set());
  EXPECT_EQ(got->CountOf(*kid->Field("ssnum")), 1);
}

TEST_F(MethodsTest, MethodCallWithoutResolverFails) {
  Evaluator ev(&db_);  // no registry attached
  auto r = ev.Eval(MethodCall("boss", Const(Value::Tuple({}, {}, "Person"))));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(MethodsTest, DispatchCountInstrumentation) {
  registry_->ResetStats();
  DispatchPlanner planner(&db_, registry_.get());
  auto a = planner.SwitchTablePlan(Var("P"), "boss");
  ASSERT_TRUE(a.ok());
  ASSERT_NE(Eval(*a), nullptr);
  // One dispatch per distinct receiver value processed.
  EXPECT_EQ(registry_->dispatch_count(), 24);
}

}  // namespace
}  // namespace excess
