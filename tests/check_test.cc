// The differential-testing oracle (src/check/): bounded deterministic-seed
// sweeps of the three oracles plus the parser fuzzer, replay of the
// minimized-repro corpus in tests/corpus/, shrinker unit tests, and named
// regressions for the bugs the oracle surfaced (float literal emission,
// EXCESS_THREADS parsing, lexer overflow, parser recursion).

#include <gtest/gtest.h>

#include <cfloat>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/crash.h"
#include "check/faultinject.h"
#include "check/gen.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "check/wirechaos.h"
#include "core/builder.h"
#include "core/eval.h"
#include "core/parallel.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "excess/emit.h"
#include "excess/parser.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"

namespace excess {
namespace check {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

std::string Describe(const Divergence& d) {
  std::ostringstream os;
  os << "[" << d.oracle << " / " << d.detail << "] seed " << d.seed << "\n"
     << d.message << "\nbefore:\n"
     << d.before_tree << "after:\n"
     << d.after_tree;
  return os.str();
}

// --- oracle sweeps ----------------------------------------------------------
// Each sweep runs kSweepSeeds deterministic seeds; the stats assertions keep
// a generator regression from silently skipping everything.

uint64_t SweepSeeds() {
  // 500 per oracle by default (the ctest budget); EXCESS_SWEEP_SEEDS raises
  // it for sustained soak runs.
  const char* env = std::getenv("EXCESS_SWEEP_SEEDS");
  if (env == nullptr || *env == '\0') return 500;
  char* end = nullptr;
  unsigned long long n = std::strtoull(env, &end, 10);
  return (end == env || *end != '\0' || n == 0) ? 500 : n;
}
const uint64_t kSweepSeeds = SweepSeeds();

TEST(OracleSweep, RuleEquivalence) {
  GenOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckRulesSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  EXPECT_GE(stats.plans, static_cast<int64_t>(kSweepSeeds));
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds));
}

TEST(OracleSweep, LoweringEquivalence) {
  GenOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckLoweringSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds));
}

TEST(OracleSweep, IndexEquivalence) {
  // Indexed vs unindexed agreement under random index churn (create/drop
  // mid-trace, appends and rebinds of the base sets): index-blind and
  // index-aware lowering must both reproduce the logical answer exactly.
  GenOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckIndexSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds));
}

TEST(OracleSweep, RoundTrip) {
  GenOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckRoundTripSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds) / 4);
}

TEST(OracleSweep, FaultInjection) {
  // Oracle 4: graceful degradation. Each seed's plans are re-executed
  // under a geometric sweep of injected faults (allocation failure,
  // cancellation, worker-batch kill) at every reachable fault point; every
  // fault must surface as its typed Status, and a post-fault replay must
  // still produce the reference answer. Run under the asan preset this is
  // also the leak check for every error-return path the governor adds.
  GenOptions opts;
  FaultSweepStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckFaultSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  EXPECT_GE(stats.plans, static_cast<int64_t>(kSweepSeeds));
  EXPECT_GT(stats.runs, 0);
  EXPECT_GT(stats.faults_fired, 0);      // the sweep actually reached faults
  EXPECT_EQ(stats.replays, stats.runs);  // every run was replay-verified
}

TEST(OracleSweep, CrashRecovery) {
  // Oracle 5: crash recovery. Each seed runs a random committed-statement
  // trace against a durable store, then simulates crashes at geometric
  // points — WAL truncation, WAL/snapshot bit flips, and live append
  // failures (clean, torn partial write, failed fsync, failed snapshot) —
  // reopening after each and asserting the recovered database equals
  // re-executing exactly the committed-statement prefix recovery reports.
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);  // bytes are identical; speed only
  CrashOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckCrashRecoverySeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  ::unsetenv("EXCESS_WAL_FSYNC");
  // Every seed contributes a clean reopen plus dozens of crash points.
  EXPECT_GE(stats.plans, static_cast<int64_t>(kSweepSeeds) * 10);
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds) * 10);
}

TEST(OracleSweep, WireChaos) {
  // Oracle 6: network chaos. Each seed drives a transactional workload
  // (per group: begin, the same value appended to two sets, then a tokened
  // commit or a rollback) through a real in-process Server over a unix
  // socket with a retrying, reconnecting Client — once clean, then once
  // per geometric fault point with one wire fault injected (drop before or
  // after the ack, torn ack, duplicated ack, stalled peer). After every
  // run the database is reopened cold and checked against the driver's
  // applied-taxonomy claims: acked commits are durable exactly once in
  // both sets, abandoned or rolled-back groups left nothing, and
  // lost-ack unknowns are 0-or-1 but always whole-group atomic.
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);  // bytes are identical; speed only
  WireChaosOptions opts;
  OracleStats stats;
  std::vector<Divergence> divs;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    ASSERT_TRUE(CheckWireChaosSeed(seed, opts, &stats, &divs).ok());
    ASSERT_TRUE(divs.empty()) << Describe(divs.front());
  }
  ::unsetenv("EXCESS_WAL_FSYNC");
  // Every seed contributes at least a clean run plus faulted reruns, and
  // every run checks each group in both sets.
  EXPECT_GE(stats.plans, static_cast<int64_t>(kSweepSeeds) * 2);
  EXPECT_GE(stats.comparisons, static_cast<int64_t>(kSweepSeeds) * 6);
}

TEST(OracleSweep, ParserFuzz) {
  GenOptions opts;
  int64_t parsed = 0;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    parsed += FuzzParserSeed(seed, opts);
  }
  EXPECT_GE(parsed, static_cast<int64_t>(kSweepSeeds) * 10);
}

// --- corpus replay ----------------------------------------------------------
// Every minimized repro of a bug the oracle found is checked in under
// tests/corpus/ with a "-- expect: parse-error|ok" header and replayed
// here forever.

TEST(CorpusReplay, EveryFile) {
  namespace fs = std::filesystem;
  fs::path dir(EXCESS_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".excess") continue;
    ++files;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();
    bool expect_error = source.rfind("-- expect: parse-error", 0) == 0;
    bool expect_ok = source.rfind("-- expect: ok", 0) == 0;
    ASSERT_TRUE(expect_error || expect_ok)
        << entry.path() << " lacks an '-- expect:' header";
    auto parsed = Parse(source);
    if (expect_error) {
      EXPECT_FALSE(parsed.ok()) << entry.path() << " should fail to parse";
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kParseError)
            << entry.path() << ": " << parsed.status().ToString();
      }
      continue;
    }
    EXPECT_TRUE(parsed.ok())
        << entry.path() << ": " << parsed.status().ToString();
    if (!parsed.ok()) continue;
    // ok-corpus files are differential repros: they must execute, and the
    // optimizer must not change any named result.
    Database plain_db, opt_db;
    MethodRegistry plain_methods(&plain_db.catalog());
    MethodRegistry opt_methods(&opt_db.catalog());
    Session::Options plain_opts;
    plain_opts.optimize = false;
    Session plain(&plain_db, &plain_methods, plain_opts);
    Session opt(&opt_db, &opt_methods);
    auto plain_run = plain.Execute(source);
    EXPECT_TRUE(plain_run.ok())
        << entry.path() << ": " << plain_run.status().ToString();
    auto opt_run = opt.Execute(source);
    EXPECT_TRUE(opt_run.ok())
        << entry.path() << ": " << opt_run.status().ToString();
    if (!plain_run.ok() || !opt_run.ok()) continue;
    for (const auto& name : plain_db.NamedObjectNames()) {
      auto a = plain_db.NamedValue(name);
      auto b = opt_db.NamedValue(name);
      ASSERT_TRUE(a.ok() && b.ok()) << entry.path() << " name " << name;
      EXPECT_TRUE((*a)->Equals(**b))
          << entry.path() << ": optimizer changed '" << name << "': "
          << (*a)->ToString() << " vs " << (*b)->ToString();
    }
  }
  EXPECT_GE(files, 8) << "corpus went missing from " << dir;
}

// --- regressions: bugs the oracle surfaced ----------------------------------

// Float literals used to be emitted at 6 significant digits, so
// parse(emit(q)) silently perturbed values. They now round-trip bit-exact.
TEST(Regression, FloatLiteralsRoundTripBitExact) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          0.30000000000000004,
                          1e-7,
                          12345678.901234567,
                          -2.5,
                          1e300,
                          5e-324,  // smallest denormal
                          DBL_MAX,
                          0.0};
  for (double d : cases) {
    Database db;
    MethodRegistry methods(&db.catalog());
    Emitter emitter(&db, &methods);
    auto program = emitter.Emit(Const(Value::Float(d)));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    Session session(&db, &methods);
    auto run = session.Execute(program->source());
    ASSERT_TRUE(run.ok()) << run.status().ToString() << "\nsource:\n"
                          << program->source();
    auto stored = db.NamedValue(program->result_name());
    ASSERT_TRUE(stored.ok());
    ASSERT_EQ((*stored)->kind(), ValueKind::kFloat)
        << (*stored)->ToString();
    double back = (*stored)->as_float();
    EXPECT_EQ(std::memcmp(&d, &back, sizeof d), 0)
        << "emitted " << program->source() << " gave back " << back
        << " for " << d;
  }
}

TEST(Regression, FloatEmissionStaysLexable) {
  // No exponent notation may leak out — the lexer has none.
  Database db;
  MethodRegistry methods(&db.catalog());
  Emitter emitter(&db, &methods);
  auto program = emitter.Emit(Const(Value::Float(1e-300)));
  ASSERT_TRUE(program.ok());
  size_t lit = program->source().find('(');  // literal starts after "retrieve ("
  ASSERT_NE(lit, std::string::npos);
  EXPECT_EQ(program->source().find('e', lit), std::string::npos)
      << program->source();
  EXPECT_FALSE(
      emitter.Emit(Const(Value::Float(1.0 / 0.0))).ok());  // inf: no form
}

// EXCESS_THREADS was parsed with atoi (UB on overflow, garbage -> 0).
TEST(Regression, PoolSizeParsing) {
  EXPECT_EQ(internal::ParsePoolSize("4", 9), 4);
  EXPECT_EQ(internal::ParsePoolSize("1", 9), 1);
  EXPECT_EQ(internal::ParsePoolSize("256", 9), 256);
  EXPECT_EQ(internal::ParsePoolSize(nullptr, 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("0", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("-3", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("257", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("4x", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("x4", 9), 9);
  // Leading whitespace is junk: the shared util::ParseEnvInt helper is
  // stricter than the original strtol-based parser, which skipped it.
  EXPECT_EQ(internal::ParsePoolSize(" 4", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("999999999999999999999999", 9), 9);
  EXPECT_EQ(internal::ParsePoolSize("-999999999999999999999999", 9), 9);
}

// Out-of-range numeric literals used to throw std::out_of_range straight
// through Lex() — a crash, violating the no-exceptions API contract.
TEST(Regression, NumericLiteralOverflowIsParseError) {
  auto big_int = Parse("retrieve (99999999999999999999)");
  ASSERT_FALSE(big_int.ok());
  EXPECT_EQ(big_int.status().code(), StatusCode::kParseError);

  std::string huge_float = "retrieve (1";
  huge_float.append(400, '0');
  huge_float += ".0)";
  auto big_float = Parse(huge_float);
  ASSERT_FALSE(big_float.ok());
  EXPECT_EQ(big_float.status().code(), StatusCode::kParseError);

  // Boundary values still lex.
  EXPECT_TRUE(Parse("retrieve (9223372036854775807)").ok());
  EXPECT_FALSE(Parse("retrieve (9223372036854775808)").ok());
}

// Unbounded recursive descent used to stack-overflow on deep nesting.
TEST(Regression, DeepNestingIsParseErrorNotCrash) {
  auto nested = [](const std::string& open, const std::string& body,
                   const std::string& close, int depth) {
    std::string s = "retrieve (";
    for (int i = 0; i < depth; ++i) s += open;
    s += body;
    for (int i = 0; i < depth; ++i) s += close;
    s += ")";
    return s;
  };
  for (const auto& src :
       {nested("(", "1", ")", 5000), nested("{", "1", "}", 5000),
        nested("not ", "true", "", 5000), nested("- ", "1", "", 5000)}) {
    auto r = Parse(src);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    EXPECT_NE(r.status().ToString().find("nesting too deep"),
              std::string::npos)
        << r.status().ToString();
  }
  std::string deep_type = "define type T : ";
  for (int i = 0; i < 5000; ++i) deep_type += "{";
  deep_type += "int4";
  for (int i = 0; i < 5000; ++i) deep_type += "}";
  auto r = Parse(deep_type);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  // Moderate nesting (well under the guard) still parses.
  EXPECT_TRUE(Parse(nested("(", "1", ")", 40)).ok());
}

// Oracle find (rules sweep, seed 224, shrunk): combining
// SET_APPLY[f](SET_APPLY[COMP_θ(INPUT)](X)) when f has no free INPUT
// resurrected the occurrences the inner selection dropped as dne — the
// composed subscript never sees the dne, so nothing poisons f's constant
// result. The rule now requires the inner subscript to be dne-free or the
// outer one to be dne-strict in INPUT.
TEST(Regression, CombineSetApplysKeepsDneFiltering) {
  Database db;
  // f = (7*2)%4 ignores INPUT; g = COMP[INPUT<6](INPUT) drops 9.
  ExprPtr constant = Arith("%", Arith("*", IntLit(7), IntLit(2)), IntLit(4));
  ExprPtr selection =
      Comp(Predicate::Atom(Input(), CmpOp::kLt, IntLit(6)), Input());
  ExprPtr source = Const(Value::SetOf(
      {Value::Int(1), Value::Int(2), Value::Int(9), Value::Int(9)}));
  ExprPtr plan = SetApply(constant, SetApply(selection, source));
  Evaluator ev(&db);
  auto before = ev.Eval(plan);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->CountOf(Value::Int(2)), 2);  // only 1 and 2 survive

  Rewriter rw(&db, RuleSet::Only({"combine-set-applys"}));
  for (const auto& neighbor : rw.EnumerateNeighbors(plan)) {
    auto after = ev.Eval(neighbor);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE((*before)->Equals(**after))
        << neighbor->ToTreeString() << " gave " << (*after)->ToString();
  }

  // The rule must still fire when the outer subscript is dne-strict.
  ExprPtr strict = SetApply(Arith("%", Input(), IntLit(4)),
                            SetApply(selection, source));
  auto strict_before = ev.Eval(strict);
  ASSERT_TRUE(strict_before.ok());
  auto neighbors = rw.EnumerateNeighbors(strict);
  ASSERT_FALSE(neighbors.empty()) << "gate is too strong";
  for (const auto& neighbor : neighbors) {
    auto after = ev.Eval(neighbor);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE((*strict_before)->Equals(**after));
  }
}

// Oracle find (round-trip sweep, seed 2, shrunk to
// tests/corpus/into_rebind_shape_change.excess): `into` over an existing
// name swapped the value but kept the old schema, so rebinding a name from
// an array to a multiset broke every later statement ranging over it.
TEST(Regression, IntoRebindRefreshesSchema) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session::Options opts;
  opts.optimize = false;
  Session session(&db, &methods, opts);
  ASSERT_TRUE(session.Execute("retrieve ([1, 2, 3]) into T").ok());
  auto arr_schema = db.NamedSchema("T");
  ASSERT_TRUE(arr_schema.ok());
  EXPECT_TRUE((*arr_schema)->is_arr());
  ASSERT_TRUE(session.Execute("retrieve ({(k: 5, v: 5)}) into T").ok());
  auto set_schema = db.NamedSchema("T");
  ASSERT_TRUE(set_schema.ok());
  EXPECT_TRUE((*set_schema)->is_set()) << (*set_schema)->ToString();
  auto run = session.Execute("retrieve (x.k) from x in T into U");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ((*db.NamedValue("U"))->CountOf(Value::Int(5)), 1);
}

// --- parser/lexer error paths (fuzz-adjacent fixed cases) -------------------

TEST(ParserErrorPaths, MalformedInputsReturnStatus) {
  const char* cases[] = {
      "retrieve (\"unterminated",
      "retrieve (1 ! 2)",
      "retrieve (",
      "retrieve (x where",
      "retrieve (x) where",
      "retrieve",
      "range of",
      "range of X",
      "define type",
      "define type T :",
      "create X",
      "append to X",
      "delete X",
      "retrieve ()) into",
      "retrieve (1..2)",
      "retrieve ({)",
      "retrieve ([1,)",
      "retrieve (a.)",
      "retrieve (a[)",
      "retrieve (a[1..)",
      "retrieve (@)",
      "retrieve (1) into 2",
  };
  for (const char* src : cases) {
    auto r = Parse(src);
    EXPECT_FALSE(r.ok()) << "expected parse failure for: " << src;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << src;
    }
  }
  // And near-miss valid forms must stay valid.
  EXPECT_TRUE(Parse("retrieve (1..2, 3)").status().ok() ||
              !Parse("retrieve (1..2, 3)").ok());  // form-dependent, no crash
  EXPECT_TRUE(Parse("").ok());                     // empty program
  EXPECT_TRUE(Parse("-- just a comment").ok());
  EXPECT_TRUE(Parse(";;;").ok());
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrinker, ReducesPlanToEssentialCore) {
  // A big plan whose only essential part is the Const {7}; the predicate
  // ("answer contains 7") plays the role of "divergence reproduces".
  Database db;
  ExprPtr noise = SetApply(
      Arith("+", Input(), IntLit(1)),
      Const(Value::SetOf({Value::Int(1), Value::Int(2), Value::Int(3)})));
  ExprPtr plan = AddUnion(
      DupElim(AddUnion(Const(Value::SetOf({Value::Int(7)})), noise)),
      Const(Value::SetOf({Value::Int(4), Value::Int(5)})));
  auto reproduces = [&db](const ExprPtr& e) {
    Evaluator ev(&db);
    auto v = ev.Eval(e);
    if (!v.ok() || !(*v)->is_set()) return false;
    return (*v)->CountOf(Value::Int(7)) > 0;
  };
  ASSERT_TRUE(reproduces(plan));
  ExprPtr shrunk = ShrinkExpr(plan, reproduces);
  EXPECT_TRUE(reproduces(shrunk));
  EXPECT_LE(shrunk->NodeCount(), 2) << shrunk->ToTreeString();
}

TEST(Shrinker, ReducesSourceToNeedle) {
  std::string source =
      "range of P is People retrieve (P.name, P.age) where needle = 1";
  auto reproduces = [](const std::string& s) {
    return s.find("needle") != std::string::npos;
  };
  std::string shrunk = ShrinkSource(source, reproduces);
  EXPECT_EQ(shrunk, "needle");
}

TEST(Shrinker, ShrinksLiteralBulk) {
  Database db;
  std::vector<SetEntry> entries;
  for (int i = 0; i < 20; ++i) entries.push_back({Value::Int(i), 3});
  ExprPtr plan = DupElim(Const(Value::SetOfCounted(std::move(entries))));
  auto reproduces = [&db](const ExprPtr& e) {
    Evaluator ev(&db);
    auto v = ev.Eval(e);
    return v.ok() && (*v)->is_set() && (*v)->CountOf(Value::Int(13)) > 0;
  };
  ASSERT_TRUE(reproduces(plan));
  ExprPtr shrunk = ShrinkExpr(plan, reproduces);
  EXPECT_TRUE(reproduces(shrunk));
  // Only the {13} entry is essential.
  ASSERT_EQ(shrunk->kind(), OpKind::kConst);
  EXPECT_LE(shrunk->literal()->DistinctCount(), 2)
      << shrunk->literal()->ToString();
}

// --- determinism ------------------------------------------------------------

TEST(Generator, DeterministicInSeed) {
  GenOptions opts;
  for (uint64_t seed : {0ull, 7ull, 123456789ull}) {
    Rng a(seed), b(seed);
    Database da, dbb;
    GenDb ga, gb;
    ASSERT_TRUE(BuildRandomDatabase(&a, opts, &da, &ga).ok());
    ASSERT_TRUE(BuildRandomDatabase(&b, opts, &dbb, &gb).ok());
    ExprPtr pa = RandomPlan(&a, opts, ga);
    ExprPtr pb = RandomPlan(&b, opts, gb);
    EXPECT_TRUE(pa->Equals(*pb)) << pa->ToTreeString() << "\nvs\n"
                                 << pb->ToTreeString();
    for (const auto& name : ga.int_sets) {
      EXPECT_TRUE((*da.NamedValue(name))->Equals(**dbb.NamedValue(name)));
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace excess
