// The durable storage engine (src/storage/): snapshot/WAL codecs, torn-tail
// recovery, the session commit protocol (`open`, `checkpoint`,
// EXCESS_DB_PATH), strict env-knob parsing, post-failure on-disk
// invariants, and persistence of the university fixture with corpus-query
// differential replay against the recovered database.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "objects/value.h"
#include "storage/engine.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "university/university.h"
#include "util/env.h"
#include "util/fileio.h"

namespace excess {
namespace storage {
namespace {

namespace fs = std::filesystem;

ValuePtr I(int64_t v) { return Value::Int(v); }

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("excess_storage_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("EXCESS_DB_PATH");
    ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    ::unsetenv("EXCESS_WAL_FSYNC");
    ::unsetenv("EXCESS_DB_PATH");
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

// --- value / schema codec ---------------------------------------------------

ValuePtr RoundTrip(const ValuePtr& v) {
  Writer w;
  EncodeValue(v, &w);
  Reader r(w.bytes());
  auto back = DecodeValue(&r);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(r.done());
  return back.ok() ? *back : nullptr;
}

TEST(StorageSerialize, ScalarRoundTrips) {
  for (const ValuePtr& v :
       {I(0), I(-7), I(INT64_MAX), Value::Float(2.5), Value::Float(-0.0),
        Value::Str(""), Value::Str(std::string("a\0b", 3)), Value::Str("héllo"),
        Value::Bool(true), Value::Bool(false), Value::Date(7305), Value::Dne(),
        Value::Unk()}) {
    ValuePtr back = RoundTrip(v);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(v->Equals(back)) << v->ToString();
  }
}

TEST(StorageSerialize, NestedValueRoundTrip) {
  ValuePtr tup =
      Value::Tuple({"a", "b"}, {I(1), Value::Unk()}, "Tagged");
  ValuePtr v = Value::SetOfCounted(
      {{tup, 3}, {Value::ArrayOf({I(1), I(2)}), 1}});
  ValuePtr back = RoundTrip(v);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(v->Equals(back));
  // Multiset cardinalities survive exactly (not expanded to occurrences),
  // and so does the tuple's exact type tag (dispatch metadata).
  EXPECT_EQ(back->CountOf(tup), 3);
  EXPECT_EQ(back->DistinctCount(), 2);
  for (const auto& entry : back->entries()) {
    if (entry.value->is_tuple()) {
      EXPECT_EQ(entry.value->type_tag(), "Tagged");
    }
  }
}

TEST(StorageSerialize, RefValueRoundTrip) {
  Oid oid;
  oid.type_id = 3;
  oid.serial = 41;
  ValuePtr back = RoundTrip(Value::RefTo(oid));
  ASSERT_NE(back, nullptr);
  ASSERT_TRUE(back->is_ref());
  EXPECT_EQ(back->oid(), oid);
}

TEST(StorageSerialize, TruncatedValueNeverCrashes) {
  Writer w;
  EncodeValue(Value::SetOf({I(1), Value::Str("abc"), Value::TupleOf({I(2)})}),
              &w);
  std::string bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Reader r(bytes.data(), cut);
    auto back = DecodeValue(&r);
    // A failure must be a typed kDataLoss, never a crash or an overrun.
    if (!back.ok()) {
      EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
    }
  }
}

TEST(StorageSerialize, ImplausibleCountRejected) {
  Writer w;
  w.U32(0x00FFFFFF);  // element count that cannot fit the remaining bytes
  w.U8(1);
  w.U8(2);
  Reader r(w.bytes());
  auto c = r.Count(1);
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsDataLoss());
}

TEST(StorageSerialize, SchemaRoundTrip) {
  SchemaPtr s = Schema::Set(Schema::Tup({{"k", IntSchema()},
                                         {"r", Schema::Ref("Item")},
                                         {"xs", Schema::Arr(FloatSchema())}}));
  Writer w;
  EncodeSchema(s, &w);
  Reader r(w.bytes());
  auto back = DecodeSchema(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(s->ToString(), (*back)->ToString());
}

TEST(StorageSerialize, SnapshotPayloadRoundTripsDatabase) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.Execute("define type Pt: ( x: int4, y: int4 )\n"
                        "define type Pt3: ( z: int4 ) inherits Pt\n"
                        "create Nums: { int4 }\n"
                        "append all {1, 2, 2} to Nums")
                  .ok());
  // Interned objects with shared identity must survive byte-for-byte.
  ValuePtr pt = Value::Tuple({"x", "y", "z"}, {I(1), I(2), I(3)}, "Pt3");
  auto oid = db.store().InternRef("Pt3", pt);
  ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  ASSERT_TRUE(db.CreateNamed("Pts", Schema::Set(Schema::Ref("Pt")),
                             Value::SetOfCounted({{Value::RefTo(*oid), 2}}))
                  .ok());

  SnapshotState state = CaptureDatabase(db, 9, {"range of N is Nums"});
  std::string payload = EncodeSnapshotPayload(state);
  auto decoded = DecodeSnapshotPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 9u);
  ASSERT_EQ(decoded->context.size(), 1u);
  EXPECT_EQ(decoded->context[0], "range of N is Nums");

  Database back;
  ASSERT_TRUE(InstallDatabase(*decoded, &back).ok());
  EXPECT_EQ(CanonicalDatabaseBytes(db), CanonicalDatabaseBytes(back));
  // The restored store resolves the same OID to the same object, and
  // interning the same deep value again finds it instead of minting a new
  // serial — the identity/interning state really came back.
  auto deref = back.store().Deref(*oid);
  ASSERT_TRUE(deref.ok()) << deref.status().ToString();
  EXPECT_TRUE((*deref)->Equals(pt));
  auto again = back.store().InternRef("Pt3", pt);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *oid);
}

TEST(StorageSerialize, CorruptSnapshotPayloadIsDataLoss) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 1 to Nums").ok());
  std::string payload = EncodeSnapshotPayload(CaptureDatabase(db, 1, {}));
  for (size_t cut = 0; cut + 1 < payload.size(); ++cut) {
    auto r = DecodeSnapshotPayload(payload.substr(0, cut));
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsDataLoss()) << cut;
    }
  }
}

// --- WAL scan ----------------------------------------------------------------

std::string WalWithRecords(const std::vector<WalRecord>& recs) {
  std::string bytes = "EXWAL001";
  for (const auto& r : recs) bytes += EncodeWalRecord(r);
  return bytes;
}

WalRecord Rec(uint64_t lsn, const std::string& source) {
  WalRecord r;
  r.lsn = lsn;
  r.source = source;
  return r;
}

TEST(WalScan, RoundTripAndFlags) {
  WalRecord r = Rec(5, "append 1 to Nums");
  r.optimize = false;
  r.context = true;
  auto scan = ScanWalBytes(WalWithRecords({r}));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].source, "append 1 to Nums");
  EXPECT_EQ(scan->records[0].lsn, 5u);
  EXPECT_FALSE(scan->records[0].optimize);
  EXPECT_TRUE(scan->records[0].context);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalScan, EveryTruncationKeepsTheIntactPrefix) {
  std::string bytes = WalWithRecords({Rec(1, "a"), Rec(2, "bb")});
  for (size_t cut = 8; cut < bytes.size(); ++cut) {
    auto scan = ScanWalBytes(bytes.substr(0, cut));
    ASSERT_TRUE(scan.ok()) << cut;
    EXPECT_LE(scan->valid_bytes, cut) << cut;
    EXPECT_LE(scan->records.size(), 2u) << cut;
    // A cut mid-record discards exactly that record as a torn tail; a cut
    // on a record boundary is not torn at all.
    EXPECT_EQ(scan->torn_tail, scan->valid_bytes != cut) << cut;
  }
}

TEST(WalScan, BadMagicIsDataLoss) {
  std::string bytes = WalWithRecords({Rec(1, "a")});
  bytes[0] = 'X';
  auto scan = ScanWalBytes(bytes);
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsDataLoss());
}

TEST(WalScan, LsnGapStopsScan) {
  auto scan = ScanWalBytes(WalWithRecords({Rec(1, "a"), Rec(3, "c")}));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);  // the gap record becomes the tail
  EXPECT_TRUE(scan->torn_tail);
}

TEST(WalScan, CorruptedPayloadDropsSuffix) {
  std::string bytes = WalWithRecords({Rec(1, "aaaa"), Rec(2, "bbbb")});
  bytes[bytes.size() - 2] ^= 0x40;  // flip a bit inside record 2's payload
  auto scan = ScanWalBytes(bytes);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_GT(scan->discarded_bytes, 0u);
}

// --- session commit protocol -------------------------------------------------

TEST_F(StorageTest, PersistsAcrossReopenWithoutCheckpoint) {
  const std::string path = Path("db.exdb");
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    ASSERT_TRUE(s.Execute("open \"" + path + "\"").ok());
    ASSERT_TRUE(s.has_storage());
    ASSERT_TRUE(s.Execute("create Nums: { int4 }\n"
                          "append all {1, 2, 2} to Nums\n"
                          "delete Nums where Nums = 1\n"
                          "retrieve (x + 10) from x in Nums into Shifted")
                    .ok());
  }  // session dies without checkpoint — recovery must replay the WAL
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  EXPECT_EQ(s.last_recovery().snapshot_seq, 0u);
  EXPECT_EQ(s.last_recovery().replayed, 4u);
  auto nums = db.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->TotalCount(), 2);
  EXPECT_EQ((*nums)->CountOf(I(2)), 2);
  auto shifted = db.NamedValue("Shifted");
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ((*shifted)->CountOf(I(12)), 2);
}

TEST_F(StorageTest, CheckpointFoldsWalIntoSnapshot) {
  const std::string path = Path("db.exdb");
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    ASSERT_TRUE(s.OpenStorage(path).ok());
    ASSERT_TRUE(s.Execute("create Nums: { int4 }\n"
                          "append 4 to Nums\n"
                          "checkpoint")
                    .ok());
    ASSERT_TRUE(s.Execute("append 5 to Nums").ok());
  }
  // The snapshot covers 2 statements; only the append after the checkpoint
  // replays from the WAL.
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  EXPECT_EQ(s.last_recovery().snapshot_seq, 2u);
  EXPECT_EQ(s.last_recovery().replayed, 1u);
  auto nums = db.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->TotalCount(), 2);
}

TEST_F(StorageTest, ContextStatementsSurviveReopen) {
  const std::string path = Path("db.exdb");
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    ASSERT_TRUE(s.OpenStorage(path).ok());
    auto r = s.Execute("define type Pt: ( x: int4 )\n"
                       "create Nums: { int4 }\n"
                       "append all {1, 2} to Nums\n"
                       "range of N is Nums\n"
                       "define Pt function dbl () returns int4 {"
                       " retrieve (this.x * 2) }\n"
                       "checkpoint");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  // The range binding came back through the snapshot's context statements…
  ASSERT_EQ(s.ranges().size(), 1u);
  EXPECT_EQ(s.ranges()[0].first, "N");
  auto r = s.Execute("retrieve (N + 1)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->CountOf(I(2)), 1);
  // …and so did the method definition.
  EXPECT_TRUE(methods.Has("Pt", "dbl"));
}

TEST_F(StorageTest, OpenAndCheckpointStatementErrors) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  EXPECT_FALSE(s.Execute("open 42").ok());
  EXPECT_FALSE(s.Execute("open").ok());
  EXPECT_FALSE(s.Execute("checkpoint").ok());  // nothing open yet
}

TEST_F(StorageTest, SecondOpenRejected) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(Path("a.exdb")).ok());
  auto r = s.Execute("open \"" + Path("b.exdb") + "\"");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("one durable database"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(StorageTest, PlainRetrieveAndExplainAreNotLogged) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(Path("db.exdb")).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 1 to Nums").ok());
  uint64_t lsn = s.next_durable_lsn();
  ASSERT_TRUE(s.Execute("retrieve (x) from x in Nums").ok());
  ASSERT_TRUE(s.Execute("explain retrieve (x) from x in Nums").ok());
  EXPECT_EQ(s.next_durable_lsn(), lsn);
}

TEST_F(StorageTest, EnvDbPathAutoOpens) {
  const std::string path = Path("env.exdb");
  ::setenv("EXCESS_DB_PATH", path.c_str(), 1);
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 3 to Nums").ok());
    EXPECT_TRUE(s.has_storage());
  }
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    auto r = s.Execute("retrieve (x) from x in Nums");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->CountOf(I(3)), 1);
  }
  ::unsetenv("EXCESS_DB_PATH");
}

TEST_F(StorageTest, FailedCommitLeavesMemoryAndDiskAtPriorState) {
  // After a storage error on any mutating statement kind, the in-memory
  // state rolls back and a fresh recovery of the on-disk database equals
  // the pre-statement state — the session-after-failure invariant.
  struct FailAppend : StorageHooks {
    bool fail = false;
    bool OnWalAppend(size_t, int64_t* partial) override {
      if (fail) *partial = 3;  // leave a torn fragment, too
      return !fail;
    }
  };
  const std::string path = Path("db.exdb");
  FailAppend hooks;
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  s.set_storage_hooks(&hooks);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("define type Pt: ( x: int4 )\n"
                        "create Nums: { int4 }\n"
                        "append all {1, 2} to Nums")
                  .ok());
  std::string before = CanonicalDatabaseBytes(db);

  const char* kStatements[] = {
      "append 9 to Nums",
      "delete Nums where Nums = 1",
      "retrieve (x) from x in Nums into Copy",
      "create Other: { int4 }",
      "define type Q: ( y: int4 ) inherits Pt",
      "range of N is Nums",
      "define Pt function dbl () returns int4 { retrieve (this.x * 2) }",
  };
  for (const char* stmt : kStatements) {
    hooks.fail = true;
    auto r = s.Execute(stmt);
    hooks.fail = false;
    ASSERT_FALSE(r.ok()) << stmt;
    EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
    // In-memory rollback: nothing of the failed statement is visible.
    EXPECT_EQ(CanonicalDatabaseBytes(db), before) << stmt;
    EXPECT_FALSE(db.HasNamed("Copy"));
    EXPECT_FALSE(db.HasNamed("Other"));
    EXPECT_FALSE(db.catalog().HasType("Q"));
    EXPECT_TRUE(s.ranges().empty());
    EXPECT_FALSE(methods.Has("Pt", "dbl"));
    // On-disk: a fresh recovery sees exactly the pre-statement state.
    Database db2;
    MethodRegistry methods2(&db2.catalog());
    Session s2(&db2, &methods2);
    ASSERT_TRUE(s2.OpenStorage(path).ok()) << stmt;
    EXPECT_EQ(CanonicalDatabaseBytes(db2), before) << stmt;
  }
  // The session stays usable: each failed append truncated the WAL back to
  // a record boundary, so the next commit lands cleanly.
  ASSERT_TRUE(s.Execute("append 7 to Nums").ok());
  Database db3;
  MethodRegistry methods3(&db3.catalog());
  Session s3(&db3, &methods3);
  ASSERT_TRUE(s3.OpenStorage(path).ok());
  auto nums = db3.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->CountOf(I(7)), 1);
}

TEST_F(StorageTest, ReplayRemembersPerStatementOptimizeFlag) {
  const std::string path = Path("db.exdb");
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session::Options o;
    o.optimize = false;  // log records must remember this
    Session s(&db, &methods, o);
    ASSERT_TRUE(s.OpenStorage(path).ok());
    ASSERT_TRUE(s.Execute("create Nums: { int4 }\n"
                          "append all {5, 6} to Nums\n"
                          "retrieve (x) from x in Nums where x > 5 into Big")
                    .ok());
  }
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);  // the replaying session defaults to optimize=on
  ASSERT_TRUE(s.OpenStorage(path).ok());
  auto big = db.NamedValue("Big");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)->TotalCount(), 1);
  EXPECT_EQ((*big)->CountOf(I(6)), 1);
}

// --- university fixture: checkpoint, kill, reopen, corpus differential ------

TEST_F(StorageTest, UniversityFixtureSurvivesKillAndReopen) {
  const std::string path = Path("uni.exdb");
  UniversityParams params;
  params.num_employees = 20;
  params.num_students = 30;
  std::string before;
  {
    Database db;
    ASSERT_TRUE(BuildUniversity(&db, params).ok());
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    // Opening a fresh path adopts the fixture as the initial snapshot.
    ASSERT_TRUE(s.OpenStorage(path).ok());
    ASSERT_TRUE(s.Execute("retrieve (Employees.name) where "
                          "Employees.salary >= 100000 into RichNames")
                    .ok());
    ASSERT_TRUE(s.Execute("checkpoint").ok());
    ASSERT_TRUE(s.Execute("retrieve (Students.gpa) where "
                          "Students.gpa > 3.0 into HighGpas")
                    .ok());
    before = CanonicalDatabaseBytes(db);
  }  // "kill": no final checkpoint, HighGpas lives only in the WAL

  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  EXPECT_EQ(s.last_recovery().replayed, 1u);
  EXPECT_EQ(CanonicalDatabaseBytes(db), before);
  EXPECT_TRUE(db.HasNamed("RichNames"));
  EXPECT_TRUE(db.HasNamed("HighGpas"));

  // Corpus differential replay: every `-- expect: ok` corpus program runs
  // on top of the *recovered* state with the optimizer on and off; result
  // values and the resulting database must agree.
  SnapshotState recovered = CaptureDatabase(db, 0, {});
  int replayed = 0;
  for (const auto& entry : fs::directory_iterator(EXCESS_CORPUS_DIR)) {
    if (entry.path().extension() != ".excess") continue;
    auto source = util::ReadFile(entry.path().string());
    ASSERT_TRUE(source.ok()) << entry.path();
    if (source->rfind("-- expect: ok", 0) != 0) continue;
    ++replayed;
    Result<ValuePtr> results[2] = {Result<ValuePtr>(nullptr),
                                   Result<ValuePtr>(nullptr)};
    std::string states[2];
    for (int opt = 0; opt < 2; ++opt) {
      Database dbv;
      ASSERT_TRUE(InstallDatabase(recovered, &dbv).ok());
      MethodRegistry mv(&dbv.catalog());
      Session::Options o;
      o.optimize = opt == 1;
      Session sv(&dbv, &mv, o);
      results[opt] = sv.Execute(*source);
      states[opt] = CanonicalDatabaseBytes(dbv);
    }
    ASSERT_EQ(results[0].ok(), results[1].ok()) << entry.path();
    EXPECT_EQ(states[0], states[1]) << entry.path();
    if (results[0].ok() && *results[0] != nullptr) {
      ASSERT_NE(*results[1], nullptr) << entry.path();
      EXPECT_TRUE((*results[0])->Equals(*results[1])) << entry.path();
    }
  }
  EXPECT_GE(replayed, 3);
}

// --- strict env knobs --------------------------------------------------------

TEST(EnvKnobs, StrictParseRejectsJunk) {
  EXPECT_EQ(util::ParseEnvInt("4", 0, 100, 9), 4);
  EXPECT_EQ(util::ParseEnvInt("0", 0, 100, 9), 0);
  EXPECT_EQ(util::ParseEnvInt("100", 0, 100, 9), 100);
  // Everything else falls back whole — a knob never half-applies.
  EXPECT_EQ(util::ParseEnvInt(nullptr, 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt(" 4", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("4 ", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("+4", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("-1", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("4x", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("0x10", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("101", 0, 100, 9), 9);
  EXPECT_EQ(util::ParseEnvInt("99999999999999999999999", 0, 100, 9), 9);
}

TEST(EnvKnobs, WalFsyncKnobIsStrict) {
  // EXCESS_WAL_FSYNC accepts exactly "0" or "1"; junk means the default
  // (fsync on). Observed through the same util::EnvInt call the session
  // makes when opening storage.
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_WAL_FSYNC", 0, 1, 1), 0);
  ::setenv("EXCESS_WAL_FSYNC", "2", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_WAL_FSYNC", 0, 1, 1), 1);
  ::setenv("EXCESS_WAL_FSYNC", "no", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_WAL_FSYNC", 0, 1, 1), 1);
  ::unsetenv("EXCESS_WAL_FSYNC");
  EXPECT_EQ(util::EnvInt("EXCESS_WAL_FSYNC", 0, 1, 1), 1);
}

TEST(EnvKnobs, DbPathKnobIsPlainString) {
  ::setenv("EXCESS_DB_PATH", "/tmp/x.exdb", 1);
  EXPECT_EQ(util::EnvString("EXCESS_DB_PATH"), "/tmp/x.exdb");
  ::setenv("EXCESS_DB_PATH", "", 1);
  EXPECT_EQ(util::EnvString("EXCESS_DB_PATH"), "");
  ::unsetenv("EXCESS_DB_PATH");
  EXPECT_EQ(util::EnvString("EXCESS_DB_PATH"), "");
}

}  // namespace
}  // namespace storage
}  // namespace excess
