// Property tests for the three-valued predicate logic (§3.2.4): Kleene
// laws (De Morgan, double negation, commutativity, absorption of T/F) and
// COMP/selection algebraic identities, randomized over data containing
// real values, unk fields, and dne fields.

#include <gtest/gtest.h>

#include <random>

#include "core/builder.h"
#include "core/eval.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

/// A random tuple whose fields may be real ints, unk, or dne.
ValuePtr RandomTuple(std::mt19937* rng) {
  std::uniform_int_distribution<int> kind(0, 5);
  auto field = [&]() -> ValuePtr {
    int k = kind(*rng);
    if (k == 4) return Value::Unk();
    if (k == 5) return Value::Dne();
    return I(k);
  };
  return Value::Tuple({"x", "y"}, {field(), field()});
}

class PredicateLawsTest : public ::testing::TestWithParam<int> {
 protected:
  PredicateLawsTest() : rng_(static_cast<uint32_t>(GetParam())) {}

  /// COMP result for predicate `p` over a random tuple: one of the tuple
  /// itself, unk, or dne.
  ValuePtr Apply(const PredicatePtr& p, const ValuePtr& t) {
    Evaluator ev(&db_);
    auto r = ev.Eval(Comp(p, Const(t)));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  PredicatePtr RandomAtom(std::mt19937* rng) {
    std::uniform_int_distribution<int> f(0, 1);
    std::uniform_int_distribution<int64_t> c(0, 4);
    ExprPtr lhs = TupExtract(f(*rng) ? "x" : "y", Input());
    std::uniform_int_distribution<int> op(0, 3);
    switch (op(*rng)) {
      case 0:
        return Eq(lhs, IntLit(c(*rng)));
      case 1:
        return Ne(lhs, IntLit(c(*rng)));
      case 2:
        return Lt(lhs, IntLit(c(*rng)));
      default:
        return Ge(lhs, IntLit(c(*rng)));
    }
  }

  void ExpectSame(const PredicatePtr& a, const PredicatePtr& b,
                  const ValuePtr& t, const char* law) {
    ValuePtr va = Apply(a, t);
    ValuePtr vb = Apply(b, t);
    ASSERT_NE(va, nullptr);
    ASSERT_NE(vb, nullptr);
    EXPECT_TRUE(va->Equals(*vb))
        << law << " violated on " << t->ToString() << ": " << a->ToString()
        << " -> " << va->ToString() << " but " << b->ToString() << " -> "
        << vb->ToString();
  }

  std::mt19937 rng_;
  Database db_;
};

TEST_P(PredicateLawsTest, DoubleNegation) {
  for (int i = 0; i < 20; ++i) {
    PredicatePtr p = RandomAtom(&rng_);
    ValuePtr t = RandomTuple(&rng_);
    ExpectSame(p, Predicate::Not(Predicate::Not(p)), t, "¬¬P = P");
  }
}

TEST_P(PredicateLawsTest, DeMorgan) {
  for (int i = 0; i < 20; ++i) {
    PredicatePtr p = RandomAtom(&rng_);
    PredicatePtr q = RandomAtom(&rng_);
    ValuePtr t = RandomTuple(&rng_);
    ExpectSame(Predicate::Not(Predicate::And(p, q)),
               Predicate::Or(Predicate::Not(p), Predicate::Not(q)), t,
               "¬(P∧Q) = ¬P∨¬Q");
    ExpectSame(Predicate::Not(Predicate::Or(p, q)),
               Predicate::And(Predicate::Not(p), Predicate::Not(q)), t,
               "¬(P∨Q) = ¬P∧¬Q");
  }
}

TEST_P(PredicateLawsTest, CommutativityAndIdempotence) {
  for (int i = 0; i < 20; ++i) {
    PredicatePtr p = RandomAtom(&rng_);
    PredicatePtr q = RandomAtom(&rng_);
    ValuePtr t = RandomTuple(&rng_);
    ExpectSame(Predicate::And(p, q), Predicate::And(q, p), t, "P∧Q = Q∧P");
    ExpectSame(Predicate::Or(p, q), Predicate::Or(q, p), t, "P∨Q = Q∨P");
    ExpectSame(Predicate::And(p, p), p, t, "P∧P = P");
    ExpectSame(Predicate::Or(p, p), p, t, "P∨P = P");
  }
}

TEST_P(PredicateLawsTest, TrueFalseAbsorption) {
  PredicatePtr t_ = Predicate::True();
  PredicatePtr f_ = Predicate::Not(Predicate::True());
  for (int i = 0; i < 20; ++i) {
    PredicatePtr p = RandomAtom(&rng_);
    ValuePtr t = RandomTuple(&rng_);
    ExpectSame(Predicate::And(p, t_), p, t, "P∧T = P");
    ExpectSame(Predicate::Or(p, f_), p, t, "P∨F = P");
    // P∧F = F and P∨T = T — regardless of P being unk.
    ValuePtr and_false = Apply(Predicate::And(p, f_), t);
    EXPECT_TRUE(and_false->is_dne());
    ValuePtr or_true = Apply(Predicate::Or(p, t_), t);
    EXPECT_TRUE(or_true->Equals(*t));
  }
}

TEST_P(PredicateLawsTest, SelectionIdempotenceAndCommutation) {
  // σ_P(σ_P(A)) = σ_P(A) and σ_P(σ_Q(A)) = σ_Q(σ_P(A)) over multisets of
  // random tuples (unk-free data: dne/unk elements interact with COMP
  // retention, documented in DESIGN.md).
  std::uniform_int_distribution<int64_t> c(0, 4);
  std::vector<ValuePtr> elems;
  for (int i = 0; i < 12; ++i) {
    elems.push_back(Value::Tuple({"x", "y"}, {I(c(rng_)), I(c(rng_))}));
  }
  ExprPtr data = Const(Value::SetOf(elems));
  PredicatePtr p = RandomAtom(&rng_);
  PredicatePtr q = RandomAtom(&rng_);
  Evaluator ev(&db_);
  ValuePtr once = *ev.Eval(Select(p, data));
  ValuePtr twice = *ev.Eval(Select(p, Select(p, data)));
  EXPECT_TRUE(once->Equals(*twice)) << "σ_P idempotence";
  ValuePtr pq = *ev.Eval(Select(p, Select(q, data)));
  ValuePtr qp = *ev.Eval(Select(q, Select(p, data)));
  EXPECT_TRUE(pq->Equals(*qp)) << "σ commutation";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateLawsTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace excess
