#include "objects/store.h"

#include <gtest/gtest.h>

#include "objects/database.h"

namespace excess {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    .DefineType("Person",
                                Schema::Tup({{"name", StringSchema()}}))
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    .DefineType("Student",
                                Schema::Tup({{"gpa", FloatSchema()}}),
                                {"Person"})
                    .ok());
  }
  Database db_;
};

TEST_F(StoreTest, CreateAndDeref) {
  ValuePtr v = Value::Tuple({"name"}, {Value::Str("ann")}, "Person");
  auto oid = db_.store().Create("Person", v);
  ASSERT_TRUE(oid.ok());
  auto back = db_.store().Deref(*oid);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Equals(*v));
  EXPECT_EQ(db_.store().size(), 1u);
}

TEST_F(StoreTest, CreateUnknownTypeFails) {
  EXPECT_TRUE(db_.store().Create("Ghost", Value::Int(1)).status().IsNotFound());
}

TEST_F(StoreTest, DanglingDerefFails) {
  Oid bogus{42, 42};
  EXPECT_TRUE(db_.store().Deref(bogus).status().IsNotFound());
}

TEST_F(StoreTest, UpdateReplacesState) {
  auto oid = db_.store().Create("Person",
                                Value::Tuple({"name"}, {Value::Str("a")}));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(
      db_.store().Update(*oid, Value::Tuple({"name"}, {Value::Str("b")})).ok());
  EXPECT_EQ((*(*db_.store().Deref(*oid))->Field("name"))->as_string(), "b");
  EXPECT_TRUE(db_.store().Update({9, 9}, Value::Int(0)).IsNotFound());
}

TEST_F(StoreTest, OidsArePartitionedByType) {
  auto p = db_.store().Create("Person", Value::Tuple({}, {}));
  auto s = db_.store().Create("Student", Value::Tuple({}, {}));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_NE(p->type_id, s->type_id);
}

TEST_F(StoreTest, InternRefIsIdempotentPerValue) {
  ValuePtr v = Value::Tuple({"name"}, {Value::Str("x")});
  auto r1 = db_.store().InternRef("Person", v);
  auto r2 = db_.store().InternRef("Person", v);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  // Different value, different OID.
  auto r3 = db_.store().InternRef("Person",
                                  Value::Tuple({"name"}, {Value::Str("y")}));
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(*r1, *r3);
}

TEST_F(StoreTest, InternRefAnonymousType) {
  auto r = db_.store().InternRef("", Value::Int(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*db_.store().ExactType(*r), "$anon");
  // DEREF works for anonymous objects too.
  EXPECT_EQ((*db_.store().Deref(*r))->as_int(), 5);
}

TEST_F(StoreTest, CreateRegistersInternEntry) {
  // REF(DEREF(r)) == r for explicitly created objects (rule 28 support).
  ValuePtr v = Value::Tuple({"name"}, {Value::Str("z")});
  auto created = db_.store().Create("Person", v);
  ASSERT_TRUE(created.ok());
  auto reffed = db_.store().InternRef("Person", v);
  ASSERT_TRUE(reffed.ok());
  EXPECT_EQ(*created, *reffed);
}

TEST_F(StoreTest, ExactTypeTracksMigration) {
  auto oid = db_.store().Create("Person", Value::Tuple({}, {}));
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*db_.store().ExactType(*oid), "Person");
  // Person -> Student: legal (Student ≤ Person keeps all `ref Person`
  // holders valid).
  ASSERT_TRUE(db_.store().MigrateType(*oid, "Student").ok());
  EXPECT_EQ(*db_.store().ExactType(*oid), "Student");
  // Student object cannot migrate to an unrelated type.
  auto s = db_.store().Create("Student", Value::Tuple({}, {}));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(db_.store().MigrateType(*s, "Person").IsTypeError());
  EXPECT_TRUE(db_.store().MigrateType(*s, "Ghost").IsNotFound());
}

TEST_F(StoreTest, ExactTypeOfValues) {
  ValuePtr tagged = Value::Tuple({}, {}, "Student");
  EXPECT_EQ(db_.store().ExactTypeOf(tagged), "Student");
  auto oid = db_.store().Create("Person", Value::Tuple({}, {}));
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(db_.store().ExactTypeOf(Value::RefTo(*oid)), "Person");
  EXPECT_EQ(db_.store().ExactTypeOf(Value::Int(3)), "");
}

TEST_F(StoreTest, DerefCountInstrumentation) {
  auto oid = db_.store().Create("Person", Value::Tuple({}, {}));
  ASSERT_TRUE(oid.ok());
  db_.store().ResetStats();
  ASSERT_TRUE(db_.store().Deref(*oid).ok());
  ASSERT_TRUE(db_.store().Deref(*oid).ok());
  EXPECT_EQ(db_.store().deref_count(), 2);
}

class DatabaseTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(DatabaseTest, CreateNamedWithDefaults) {
  ASSERT_TRUE(db_.CreateNamed("S", Schema::Set(IntSchema())).ok());
  ASSERT_TRUE(db_.CreateNamed("A", Schema::Arr(IntSchema())).ok());
  EXPECT_TRUE((*db_.NamedValue("S"))->is_set());
  EXPECT_TRUE((*db_.NamedValue("A"))->is_array());
  EXPECT_TRUE(db_.CreateNamed("S", Schema::Set(IntSchema())).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(db_.NamedValue("missing").status().IsNotFound());
}

TEST_F(DatabaseTest, SetNamedInvalidatesExtents) {
  ASSERT_TRUE(db_.catalog()
                  .DefineType("P", Schema::Tup({{"id", IntSchema()}}))
                  .ok());
  ASSERT_TRUE(db_.catalog()
                  .DefineType("Q", Schema::Tup({{"q", IntSchema()}}), {"P"})
                  .ok());
  ValuePtr p = Value::Tuple({"id"}, {Value::Int(1)}, "P");
  ValuePtr q = Value::Tuple({"id", "q"}, {Value::Int(2), Value::Int(3)}, "Q");
  ASSERT_TRUE(db_.CreateNamed("Set", Schema::Set(AnySchema()),
                              Value::SetOf({p, q}))
                  .ok());
  auto extents = db_.TypeExtents("Set");
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ((*extents)->size(), 2u);
  EXPECT_EQ((*extents)->at("P")->TotalCount(), 1);
  // Update the set; extents must rebuild.
  ASSERT_TRUE(db_.SetNamed("Set", Value::SetOf({q})).ok());
  auto extents2 = db_.TypeExtents("Set");
  ASSERT_TRUE(extents2.ok());
  EXPECT_EQ((*extents2)->count("P"), 0u);
  EXPECT_EQ((*extents2)->at("Q")->TotalCount(), 1);
}

}  // namespace
}  // namespace excess
