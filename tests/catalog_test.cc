#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace excess {
namespace {

SchemaPtr Fields(std::vector<Field> f) { return Schema::Tup(std::move(f)); }

class CatalogTest : public ::testing::Test {
 protected:
  Catalog cat_;
};

TEST_F(CatalogTest, DefineAndLookup) {
  ASSERT_TRUE(cat_.DefineType("Person", Fields({{"name", StringSchema()}})).ok());
  EXPECT_TRUE(cat_.HasType("Person"));
  auto entry = cat_.Lookup("Person");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->name, "Person");
  EXPECT_TRUE(cat_.Lookup("Nobody").status().IsNotFound());
}

TEST_F(CatalogTest, DuplicateDefinitionRejected) {
  ASSERT_TRUE(cat_.DefineType("T", Fields({})).ok());
  Status st = cat_.DefineType("T", Fields({}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, UnknownParentRejected) {
  Status st = cat_.DefineType("Child", Fields({}), {"Ghost"});
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(CatalogTest, SelfInheritanceRejected) {
  Status st = cat_.DefineType("Loop", Fields({}), {"Loop"});
  EXPECT_FALSE(st.ok());
}

TEST_F(CatalogTest, InheritedAttributesMerged) {
  ASSERT_TRUE(cat_.DefineType("Person", Fields({{"ssnum", IntSchema()},
                                                {"name", StringSchema()}}))
                  .ok());
  ASSERT_TRUE(cat_.DefineType("Employee",
                              Fields({{"salary", IntSchema()}}), {"Person"})
                  .ok());
  auto eff = cat_.EffectiveSchema("Employee");
  ASSERT_TRUE(eff.ok());
  // Inherited fields first (in supertype order), then local.
  ASSERT_EQ((*eff)->fields().size(), 3u);
  EXPECT_EQ((*eff)->fields()[0].name, "ssnum");
  EXPECT_EQ((*eff)->fields()[1].name, "name");
  EXPECT_EQ((*eff)->fields()[2].name, "salary");
  EXPECT_EQ((*eff)->type_name(), "Employee");
}

TEST_F(CatalogTest, OverrideReplacesInheritedTypeInPlace) {
  ASSERT_TRUE(cat_.DefineType("Person", Fields({{"id", IntSchema()},
                                                {"tag", IntSchema()}}))
                  .ok());
  // Student overrides `tag` to a string; position is preserved.
  ASSERT_TRUE(cat_.DefineType("Student", Fields({{"tag", StringSchema()}}),
                              {"Person"})
                  .ok());
  auto eff = cat_.EffectiveSchema("Student");
  ASSERT_TRUE(eff.ok());
  ASSERT_EQ((*eff)->fields().size(), 2u);
  EXPECT_EQ((*eff)->fields()[1].name, "tag");
  EXPECT_TRUE((*eff)->fields()[1].type->Equals(*StringSchema()));
}

TEST_F(CatalogTest, DiamondConflictNeedsOverride) {
  ASSERT_TRUE(cat_.DefineType("A", Fields({{"x", IntSchema()}})).ok());
  ASSERT_TRUE(cat_.DefineType("B", Fields({{"x", StringSchema()}})).ok());
  // Without an override the conflicting `x` is rejected...
  Status st = cat_.DefineType("AB", Fields({}), {"A", "B"});
  EXPECT_TRUE(st.IsTypeError());
  // ...and with one it is accepted.
  ASSERT_TRUE(cat_.DefineType("AB2", Fields({{"x", FloatSchema()}}),
                              {"A", "B"})
                  .ok());
  auto eff = cat_.EffectiveSchema("AB2");
  ASSERT_TRUE(eff.ok());
  ASSERT_EQ((*eff)->fields().size(), 1u);
  EXPECT_TRUE((*eff)->fields()[0].type->Equals(*FloatSchema()));
}

TEST_F(CatalogTest, AgreeingDiamondNeedsNoOverride) {
  ASSERT_TRUE(cat_.DefineType("Base", Fields({{"id", IntSchema()}})).ok());
  ASSERT_TRUE(cat_.DefineType("L", Fields({{"l", IntSchema()}}), {"Base"}).ok());
  ASSERT_TRUE(cat_.DefineType("R", Fields({{"r", IntSchema()}}), {"Base"}).ok());
  // L and R both contribute `id` with the same type: fine.
  ASSERT_TRUE(cat_.DefineType("LR", Fields({}), {"L", "R"}).ok());
  auto eff = cat_.EffectiveSchema("LR");
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ((*eff)->fields().size(), 3u);  // id, l, r — id only once
}

TEST_F(CatalogTest, SubtypeRelationIsReflexiveTransitive) {
  ASSERT_TRUE(cat_.DefineType("A", Fields({})).ok());
  ASSERT_TRUE(cat_.DefineType("B", Fields({}), {"A"}).ok());
  ASSERT_TRUE(cat_.DefineType("C", Fields({}), {"B"}).ok());
  EXPECT_TRUE(cat_.IsSubtype("A", "A"));
  EXPECT_TRUE(cat_.IsSubtype("C", "A"));
  EXPECT_FALSE(cat_.IsSubtype("A", "C"));
  EXPECT_FALSE(cat_.IsSubtype("Ghost", "A"));
  EXPECT_FALSE(cat_.IsSubtype("A", "Ghost"));
}

TEST_F(CatalogTest, DescendantsAndSharing) {
  ASSERT_TRUE(cat_.DefineType("P", Fields({})).ok());
  ASSERT_TRUE(cat_.DefineType("S", Fields({}), {"P"}).ok());
  ASSERT_TRUE(cat_.DefineType("E", Fields({}), {"P"}).ok());
  ASSERT_TRUE(cat_.DefineType("TA", Fields({}), {"S", "E"}).ok());
  EXPECT_EQ(cat_.Descendants("P"), (std::vector<std::string>{"S", "E", "TA"}));
  EXPECT_EQ(cat_.SelfAndDescendants("S"),
            (std::vector<std::string>{"S", "TA"}));
  // S and E share TA.
  EXPECT_FALSE(cat_.SharesNoDescendant("S", "E"));
  ASSERT_TRUE(cat_.DefineType("Q", Fields({})).ok());
  EXPECT_TRUE(cat_.SharesNoDescendant("P", "Q"));
}

TEST_F(CatalogTest, ForwardRefsCheckedByValidate) {
  // dept: ref Department may precede Department's definition (Figure 1).
  ASSERT_TRUE(cat_.DefineType("Employee",
                              Fields({{"dept", Schema::Ref("Department")}}))
                  .ok());
  EXPECT_TRUE(cat_.Validate().IsNotFound());
  ASSERT_TRUE(cat_.DefineType("Department", Fields({{"floor", IntSchema()}}))
                  .ok());
  EXPECT_TRUE(cat_.Validate().ok());
}

TEST_F(CatalogTest, TypeIdsRoundTrip) {
  ASSERT_TRUE(cat_.DefineType("X", Fields({})).ok());
  ASSERT_TRUE(cat_.DefineType("Y", Fields({})).ok());
  auto idx = cat_.TypeId("X");
  auto idy = cat_.TypeId("Y");
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(idy.ok());
  EXPECT_NE(*idx, *idy);
  EXPECT_EQ(*cat_.TypeName(*idx), "X");
  EXPECT_TRUE(cat_.TypeName(999).status().IsNotFound());
}

TEST_F(CatalogTest, InheritanceRequiresTupleTypes) {
  ASSERT_TRUE(cat_.DefineType("Nums", Schema::Set(IntSchema())).ok());
  Status st = cat_.DefineType("MoreNums", Schema::Set(IntSchema()), {"Nums"});
  EXPECT_TRUE(st.IsTypeError());
}

}  // namespace
}  // namespace excess
