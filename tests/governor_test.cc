// The query governor: per-query budgets (occurrences, bytes, recursion
// depth, wall-clock) and cooperative cancellation, enforced as typed Status
// across the evaluator, the hash kernels, HASH_JOIN, parallel APPLY, and
// the session statement loop — plus the env knobs and the depth guards the
// compile-side passes (translate / infer / emit) carry.
//
// GovernorParallel.* is registered a second time in tests/CMakeLists.txt
// with EXCESS_THREADS=4 so the deadline / cancellation / budget paths are
// exercised inside real worker batches (the pool reads EXCESS_THREADS once
// at creation, so thread-count variation has to happen across processes).

#include "core/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "catalog/schema.h"
#include "core/builder.h"
#include "core/eval.h"
#include "core/infer.h"
#include "excess/ast.h"
#include "excess/emit.h"
#include "excess/session.h"
#include "excess/translate.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "storage/serialize.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces) — test readability

ValuePtr I(int64_t v) { return Value::Int(v); }

ValuePtr IntSet(int64_t n, int64_t offset = 0) {
  std::vector<ValuePtr> occ;
  occ.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) occ.push_back(I(offset + i));
  return Value::SetOf(occ);
}

/// DE(DE(...DE(leaf)...)), n levels — the cheapest way to make a plan of
/// arbitrary depth for the recursion guards.
ExprPtr NestedDe(int n, ExprPtr leaf) {
  ExprPtr e = std::move(leaf);
  for (int i = 0; i < n; ++i) e = DupElim(std::move(e));
  return e;
}

// --- governor unit behavior -------------------------------------------------

TEST(GovernorTest, UnlimitedByDefault) {
  Governor gov;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(gov.Checkpoint(1000).ok());
  }
  EXPECT_TRUE(gov.ChargeBytes(int64_t{1} << 40).ok());
  EXPECT_EQ(gov.occurrences(), 10000 * int64_t{1000});
}

TEST(GovernorTest, OccurrenceBudget) {
  ExecLimits limits;
  limits.max_occurrences = 10;
  Governor gov(limits);
  EXPECT_TRUE(gov.Checkpoint(4).ok());
  EXPECT_TRUE(gov.Checkpoint(4).ok());
  Status s = gov.Checkpoint(4);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // Plain (non-producing) checkpoints still pass — the budget is on
  // materialized occurrences, not on progress.
  EXPECT_TRUE(gov.Checkpoint().ok());
}

TEST(GovernorTest, ByteBudgetAndPeakTracking) {
  ExecLimits limits;
  limits.max_bytes = 1000;
  Governor gov(limits);
  EXPECT_TRUE(gov.ChargeBytes(600).ok());
  Status s = gov.ChargeBytes(600);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_GE(gov.peak_bytes(), 600);
  gov.ReleaseBytes(600);
  EXPECT_TRUE(gov.ChargeBytes(300).ok());
  // Peak survives the release.
  EXPECT_GE(gov.peak_bytes(), 600);
}

TEST(GovernorTest, CancelTokenObservedAndResettable) {
  auto token = std::make_shared<CancelToken>();
  Governor gov(ExecLimits::Unlimited(), token);
  EXPECT_TRUE(gov.Checkpoint().ok());
  token->Cancel();
  Status s = gov.Checkpoint();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  token->Reset();
  EXPECT_TRUE(gov.Checkpoint().ok());
}

TEST(GovernorTest, DeadlineExceeded) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  Governor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The clock is polled every 256 checkpoints; within 1024 plain ticks the
  // expired deadline must surface.
  Status s = Status::OK();
  for (int i = 0; i < 1024 && s.ok(); ++i) s = gov.Checkpoint();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

// --- env knobs --------------------------------------------------------------

TEST(GovernorEnvTest, ParseLimitIsStrict) {
  using internal::ParseLimit;
  EXPECT_EQ(ParseLimit("123", 1, 1000, -1), 123);
  EXPECT_EQ(ParseLimit("1", 1, 1000, -1), 1);
  EXPECT_EQ(ParseLimit("1000", 1, 1000, -1), 1000);
  // Everything else falls back: junk, trailing junk, empty, negative,
  // out-of-range, overflow.
  EXPECT_EQ(ParseLimit("abc", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("12abc", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit(" 12", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("-5", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("0", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("1001", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit("99999999999999999999999999", 1, 1000, -1), -1);
  EXPECT_EQ(ParseLimit(nullptr, 1, 1000, -1), -1);
}

TEST(GovernorEnvTest, FromEnvOverlaysValidKnobs) {
  ASSERT_EQ(setenv("EXCESS_DEADLINE_MS", "250", 1), 0);
  ASSERT_EQ(setenv("EXCESS_MEM_LIMIT_MB", "2", 1), 0);
  ExecLimits limits = ExecLimits::FromEnv();
  EXPECT_EQ(limits.deadline_ms, 250);
  EXPECT_EQ(limits.max_bytes, int64_t{2} << 20);

  // Invalid values leave the base untouched (no atoi-style prefix parse).
  ASSERT_EQ(setenv("EXCESS_DEADLINE_MS", "250x", 1), 0);
  ASSERT_EQ(setenv("EXCESS_MEM_LIMIT_MB", "-3", 1), 0);
  ExecLimits base;
  base.deadline_ms = 77;
  limits = ExecLimits::FromEnv(base);
  EXPECT_EQ(limits.deadline_ms, 77);
  EXPECT_EQ(limits.max_bytes, 0);

  ASSERT_EQ(unsetenv("EXCESS_DEADLINE_MS"), 0);
  ASSERT_EQ(unsetenv("EXCESS_MEM_LIMIT_MB"), 0);
  limits = ExecLimits::FromEnv();
  EXPECT_EQ(limits.deadline_ms, 0);
  EXPECT_EQ(limits.max_bytes, 0);
}

// --- evaluator integration --------------------------------------------------

class GovernedEvalTest : public ::testing::Test {
 protected:
  /// CROSS(CROSS(CROSS(s, s), s), s) over a 50-element set: ~6.25M output
  /// tuples if allowed to run — the adversarial stacked-cross regression.
  ExprPtr StackedCross() {
    ValuePtr s = IntSet(50);
    return Cross(Cross(Cross(Const(s), Const(s)), Const(s)), Const(s));
  }

  Database db_;
};

TEST_F(GovernedEvalTest, StackedCrossTripsOccurrenceBudget) {
  ExecLimits limits;
  limits.max_occurrences = 10000;
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_governor(&gov);
  auto r = ev.Eval(StackedCross());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  // The governor stopped the product mid-flight, long before 6.25M tuples.
  EXPECT_LT(gov.occurrences(), 100000);
  EXPECT_GT(ev.stats().peak_bytes, 0);
}

TEST_F(GovernedEvalTest, StackedCrossTripsMemoryBudget) {
  ExecLimits limits;
  limits.max_bytes = 1 << 20;  // 1 MB
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_governor(&gov);
  auto r = ev.Eval(StackedCross());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_GT(ev.stats().peak_bytes, 0);
  EXPECT_LE(ev.stats().peak_bytes, (1 << 20) + (1 << 16));
}

TEST_F(GovernedEvalTest, StackedCrossTripsDeadline) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  Governor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Evaluator ev(&db_);
  ev.set_governor(&gov);
  auto begin = std::chrono::steady_clock::now();
  auto r = ev.Eval(StackedCross());
  auto elapsed = std::chrono::steady_clock::now() - begin;
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  // Surfaced within the time it takes to poll the clock a few times, not
  // after materializing the full product.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(GovernedEvalTest, HashJoinBuildAndProbeRespectBudgets) {
  // All keys equal: the join degenerates to a full cross product, so the
  // occurrence budget must trip inside HASH_JOIN's emit loop.
  std::vector<ValuePtr> left, right;
  for (int i = 0; i < 200; ++i) {
    left.push_back(Value::Tuple({"k", "v"}, {I(1), I(i)}));
    right.push_back(Value::Tuple({"k", "v"}, {I(1), I(1000 + i)}));
  }
  PredicatePtr theta = Eq(Path({"_1", "k"}, Input()), Path({"_2", "k"}, Input()));
  ExprPtr join = HashJoin(theta, Const(Value::SetOf(left)),
                          Const(Value::SetOf(right)),
                          TupExtract("k", Input()), TupExtract("k", Input()));

  ExecLimits limits;
  limits.max_occurrences = 5000;  // < the 40000 pairs the join would emit
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_governor(&gov);
  auto r = ev.Eval(join);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_GT(ev.stats().peak_bytes, 0);

  // Cancellation fires during the *build* phase too: key evaluation per
  // build row goes through EvalNode, which is a checkpoint.
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  Governor cancelled(ExecLimits::Unlimited(), token);
  Evaluator ev2(&db_);
  ev2.set_governor(&cancelled);
  auto r2 = ev2.Eval(join);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsCancelled()) << r2.status().ToString();
}

TEST_F(GovernedEvalTest, EvaluatorUsableAfterTrip) {
  ExecLimits limits;
  limits.max_occurrences = 100;
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_governor(&gov);
  ASSERT_FALSE(ev.Eval(StackedCross()).ok());
  // Same evaluator, fresh governor: a small plan still runs to completion.
  Governor fresh;
  ev.set_governor(&fresh);
  auto r = ev.Eval(DupElim(Const(IntSet(10))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->TotalCount(), 10);
}

// --- recursion depth guards -------------------------------------------------

TEST(DepthGuardTest, EvalDepthIsBounded) {
  Database db;
  Evaluator ev(&db);
  // Over the default cap: typed error, not a stack overflow.
  auto deep = ev.Eval(NestedDe(kDefaultEvalDepth + 100, Const(IntSet(2))));
  ASSERT_FALSE(deep.ok());
  EXPECT_TRUE(deep.status().IsResourceExhausted())
      << deep.status().ToString();

  // The cap is per-query-configurable through the governor's limits.
  ExecLimits limits;
  limits.max_eval_depth = 10;
  Governor gov(limits);
  ev.set_governor(&gov);
  EXPECT_FALSE(ev.Eval(NestedDe(20, Const(IntSet(2)))).ok());
  auto ok = ev.Eval(NestedDe(5, Const(IntSet(2))));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(DepthGuardTest, InferDepthIsBounded) {
  Database db;
  TypeInference infer(&db);
  auto r = infer.Infer(NestedDe(400, Const(IntSet(2))));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_TRUE(infer.Infer(NestedDe(100, Const(IntSet(2)))).ok());
}

TEST(DepthGuardTest, TranslateDepthIsBounded) {
  // The parser caps nesting at 200, but ASTs can be built directly; a
  // 600-deep arithmetic chain must be a typed error, not a stack overflow.
  auto lit = std::make_shared<ExprAst>();
  lit->kind = ExprAst::Kind::kIntLit;
  lit->int_value = 1;
  ExprAstPtr e = lit;
  for (int i = 0; i < 600; ++i) {
    auto add = std::make_shared<ExprAst>();
    add->kind = ExprAst::Kind::kBinary;
    add->text = "+";
    add->base = e;
    add->rhs = lit;
    e = add;
  }
  Database db;
  Translator tr(&db, nullptr);
  auto r = tr.TranslateClosedExpr(e);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST(DepthGuardTest, EmitDepthIsBounded) {
  Database db;
  Emitter em(&db, nullptr);
  auto r = em.Emit(NestedDe(400, Const(IntSet(2))));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  auto ok = em.Emit(NestedDe(5, Const(IntSet(2))));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// --- session integration ----------------------------------------------------

class GovernedSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    token_ = std::make_shared<CancelToken>();
    Session::Options options;
    options.cancel = token_;
    session_ = std::make_unique<Session>(&db_, registry_.get(), options);
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                IntSet(100))
                    .ok());
    ASSERT_TRUE(session_->Execute("range of N is Nums").ok());
  }

  ValuePtr Nums() { return *db_.NamedValue("Nums"); }

  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  CancelTokenPtr token_;
  std::unique_ptr<Session> session_;
};

TEST_F(GovernedSessionTest, CancellationBetweenStatements) {
  ASSERT_TRUE(session_->Execute("append 500 to Nums").ok());
  token_->Cancel();
  auto r = session_->Execute("append 501 to Nums");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(Nums()->CountOf(I(501)), 0);  // nothing staged, nothing applied
  token_->Reset();
  ASSERT_TRUE(session_->Execute("append 501 to Nums").ok());
  EXPECT_EQ(Nums()->CountOf(I(501)), 1);
}

TEST_F(GovernedSessionTest, SessionStaysUsableAfterEveryFaultedStatementKind) {
  // A budget small enough that any statement iterating Nums trips it.
  ExecLimits tiny;
  tiny.max_occurrences = 10;

  // retrieve: trips, session survives, relaxed limits succeed.
  session_->set_limits(tiny);
  auto r = session_->Execute("retrieve (N) where N >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();

  // retrieve ... into: the target must not be created on failure.
  r = session_->Execute("retrieve (N) where N >= 0 into Copy");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_FALSE(db_.GetNamed("Copy").ok());

  // append all <query>: the target keeps its pre-statement value.
  r = session_->Execute("append all Nums to Nums");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_EQ(Nums()->TotalCount(), 100);

  // delete ... where: same staging discipline.
  r = session_->Execute("delete Nums where Nums >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_EQ(Nums()->TotalCount(), 100);

  // Relax the limits: every statement kind now commits.
  session_->set_limits(ExecLimits::Unlimited());
  ASSERT_TRUE(session_->Execute("retrieve (N) where N >= 0").ok());
  ASSERT_TRUE(
      session_->Execute("retrieve (N) where N >= 0 into Copy").ok());
  EXPECT_TRUE(db_.GetNamed("Copy").ok());
  ASSERT_TRUE(session_->Execute("append all {1, 2} to Nums").ok());
  EXPECT_EQ(Nums()->TotalCount(), 102);
  ASSERT_TRUE(session_->Execute("delete Nums where Nums >= 50").ok());
  EXPECT_LT(Nums()->TotalCount(), 102);
  // The governed statement surfaced its memory accounting.
  EXPECT_GT(session_->last_stats().peak_bytes, 0);
}

TEST_F(GovernedSessionTest, FaultedMutationsLeaveDurableStateUntouched) {
  // Same invariant as above, but with a durable database attached: a
  // mutation that trips a budget (or a cancelled one) must not reach the
  // write-ahead log, so a fresh recovery of the on-disk database equals the
  // pre-statement state. Budget checks happen during evaluation, which runs
  // strictly before the durable append in the commit protocol.
  namespace fs = std::filesystem;
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  const fs::path dir = fs::temp_directory_path() /
                       ("excess_governor_storage_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "db.exdb").string();
  ASSERT_TRUE(session_->OpenStorage(path).ok());

  auto reopened_state = [&] {
    Database db2;
    MethodRegistry reg2(&db2.catalog());
    Session s2(&db2, &reg2);
    EXPECT_TRUE(s2.OpenStorage(path).ok());
    return storage::CanonicalDatabaseBytes(db2);
  };
  std::string before = storage::CanonicalDatabaseBytes(db_);
  ASSERT_EQ(reopened_state(), before);
  uint64_t lsn = session_->next_durable_lsn();

  ExecLimits tiny;
  tiny.max_occurrences = 10;
  session_->set_limits(tiny);
  for (const char* stmt :
       {"append all Nums to Nums", "delete Nums where Nums >= 0",
        "retrieve (N) where N >= 0 into Copy"}) {
    auto r = session_->Execute(stmt);
    ASSERT_FALSE(r.ok()) << stmt;
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    EXPECT_EQ(session_->next_durable_lsn(), lsn) << stmt;   // nothing logged
    EXPECT_EQ(storage::CanonicalDatabaseBytes(db_), before) << stmt;
    EXPECT_EQ(reopened_state(), before) << stmt;            // nothing on disk
  }

  // Deadline on a mutation: a 1ms budget against a 10^6-occurrence cross
  // product trips mid-evaluation, long before the commit protocol's append.
  ExecLimits dl = ExecLimits::Unlimited();
  dl.deadline_ms = 1;
  session_->set_limits(dl);
  {
    auto r = session_->Execute(
        "retrieve (x) from x in Nums, y in Nums, z in Nums into Big");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
    EXPECT_EQ(session_->next_durable_lsn(), lsn);
    EXPECT_EQ(storage::CanonicalDatabaseBytes(db_), before);
    EXPECT_EQ(reopened_state(), before);
  }

  // Cancellation on a mutation: same discipline.
  token_->Cancel();
  auto r = session_->Execute("append 999 to Nums");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(session_->next_durable_lsn(), lsn);
  EXPECT_EQ(reopened_state(), before);
  token_->Reset();

  // Relaxed, the same statements commit durably.
  session_->set_limits(ExecLimits::Unlimited());
  ASSERT_TRUE(session_->Execute("append 999 to Nums").ok());
  EXPECT_EQ(session_->next_durable_lsn(), lsn + 1);
  EXPECT_EQ(reopened_state(), storage::CanonicalDatabaseBytes(db_));

  fs::remove_all(dir);
  ::unsetenv("EXCESS_WAL_FSYNC");
}

TEST_F(GovernedSessionTest, DeadlineAppliesPerStatementNotPerSession) {
  ExecLimits limits;
  limits.deadline_ms = 60000;
  session_->set_limits(limits);
  // Far-future deadline: both statements run; a per-session deadline armed
  // once would eventually starve later statements, a per-statement one
  // never does.
  ASSERT_TRUE(session_->Execute("retrieve (N) where N >= 0").ok());
  ASSERT_TRUE(session_->Execute("retrieve (N) where N < 50").ok());
}

// --- parallel APPLY (re-registered with EXCESS_THREADS=4) -------------------

class GovernorParallelTest : public ::testing::Test {
 protected:
  /// SET_APPLY with an arithmetic subscript over a large set — the shape
  /// the parallel evaluator partitions across workers.
  ExprPtr BigApply() {
    return SetApply(Arith("+", Input(), Const(I(1))), Const(IntSet(4000)));
  }

  Database db_;
};

TEST_F(GovernorParallelTest, DeadlineInsideParallelSetApply) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  Governor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Evaluator ev(&db_);
  ev.set_parallel_threshold(1);
  ev.set_governor(&gov);
  auto r = ev.Eval(BigApply());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
}

TEST_F(GovernorParallelTest, CancellationObservedByWorkers) {
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  Governor gov(ExecLimits::Unlimited(), token);
  Evaluator ev(&db_);
  ev.set_parallel_threshold(1);
  ev.set_governor(&gov);
  auto r = ev.Eval(BigApply());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST_F(GovernorParallelTest, OccurrenceBudgetSharedAcrossWorkers) {
  ExecLimits limits;
  limits.max_occurrences = 500;
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_parallel_threshold(1);
  ev.set_governor(&gov);
  auto r = ev.Eval(BigApply());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  // Workers observed the shared budget: nowhere near all 4000 elements
  // were admitted, and the pool drained cleanly (no hang to get here).
  EXPECT_LT(gov.occurrences(), 4000);
}

TEST_F(GovernorParallelTest, StatsStillMergedAfterWorkerFailure) {
  ExecLimits limits;
  limits.max_occurrences = 500;
  Governor gov(limits);
  Evaluator ev(&db_);
  ev.set_parallel_threshold(1);
  ev.set_governor(&gov);
  ASSERT_FALSE(ev.Eval(BigApply()).ok());
  // Worker stats merge even when the batch fails partway.
  EXPECT_GT(ev.stats().TotalInvocations(), 0);
  EXPECT_GT(ev.stats().peak_bytes, 0);
}

}  // namespace
}  // namespace excess
