#include "excess/parser.h"

#include <gtest/gtest.h>

#include "excess/lexer.h"

namespace excess {
namespace {

TEST(LexerTest, TokenizesKeywordsAndIdentifiers) {
  auto toks = Lex("retrieve unique (S.name) from S in Students");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kRetrieve);
  EXPECT_EQ((*toks)[1].kind, TokKind::kUnique);
  EXPECT_EQ((*toks)[2].kind, TokKind::kLParen);
  EXPECT_EQ((*toks)[3].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[3].text, "S");
  EXPECT_EQ((*toks)[4].kind, TokKind::kDot);
  EXPECT_EQ((*toks).back().kind, TokKind::kEof);
}

TEST(LexerTest, NumbersAndRanges) {
  auto toks = Lex("1..10 3.5 42");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kIntLit);
  EXPECT_EQ((*toks)[0].int_value, 1);
  EXPECT_EQ((*toks)[1].kind, TokKind::kDotDot);
  EXPECT_EQ((*toks)[2].int_value, 10);
  EXPECT_EQ((*toks)[3].kind, TokKind::kFloatLit);
  EXPECT_DOUBLE_EQ((*toks)[3].float_value, 3.5);
  EXPECT_EQ((*toks)[4].int_value, 42);
}

TEST(LexerTest, StringsAndComments) {
  auto toks = Lex("\"Madi\\\"son\" -- a comment\n42");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kStrLit);
  EXPECT_EQ((*toks)[0].text, "Madi\"son");
  EXPECT_EQ((*toks)[1].kind, TokKind::kIntLit);
  EXPECT_FALSE(Lex("\"unterminated").ok());
}

TEST(LexerTest, OperatorsAndErrors) {
  auto toks = Lex("<= >= != <> = < >");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kLe);
  EXPECT_EQ((*toks)[1].kind, TokKind::kGe);
  EXPECT_EQ((*toks)[2].kind, TokKind::kNe);
  EXPECT_EQ((*toks)[3].kind, TokKind::kNe);
  EXPECT_FALSE(Lex("@").ok());
  EXPECT_FALSE(Lex("!x").ok());
}

TEST(ParserTest, Figure1TypeDefinitions) {
  // Verbatim Figure 1 (modulo whitespace).
  const char* ddl = R"(
    define type Person: (
      ssnum: int4, name: char[], street: char[20],
      city: char[10], zip: int4, birthday: Date )
    define type Employee: (
      jobtitle: char[20], dept: ref Department, manager: ref Employee,
      sub_ords: { ref Employee }, salary: int4, kids: { Person } )
      inherits Person
    define type Student: (
      gpa: float4, dept: ref Department, advisor: ref Employee )
      inherits Person
    define type Department: (
      division: char[], name: char[], floor: int4,
      employees: { ref Employee } )
    create Employees: { ref Employee }
    create Students: { ref Student }
    create Departments: { ref Department }
    create TopTen: array [1..10] of ref Employee
  )";
  auto program = Parse(ddl);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 8u);
  EXPECT_EQ((*program)[0].kind, Statement::Kind::kDefineType);
  EXPECT_EQ((*program)[0].define_type->name, "Person");
  EXPECT_EQ((*program)[0].define_type->body->fields.size(), 6u);
  EXPECT_EQ((*program)[1].define_type->inherits,
            (std::vector<std::string>{"Person"}));
  EXPECT_EQ((*program)[7].kind, Statement::Kind::kCreate);
  EXPECT_EQ((*program)[7].create->type->kind, TypeAst::Kind::kArray);
  ASSERT_TRUE((*program)[7].create->type->array_size.has_value());
  EXPECT_EQ(*(*program)[7].create->type->array_size, 10);
}

TEST(ParserTest, RangeAndSimpleRetrieve) {
  auto program = Parse(
      "range of E is Employees\n"
      "retrieve (C.name) from C in E.kids where E.dept.floor = 2");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 2u);
  EXPECT_EQ((*program)[0].kind, Statement::Kind::kRange);
  EXPECT_EQ((*program)[0].range->var, "E");
  const auto& r = *(*program)[1].retrieve;
  EXPECT_FALSE(r.unique);
  ASSERT_EQ(r.targets.size(), 1u);
  EXPECT_EQ(r.targets[0].second->kind, ExprAst::Kind::kField);
  ASSERT_EQ(r.from.size(), 1u);
  EXPECT_EQ(r.from[0].var, "C");
  ASSERT_NE(r.where, nullptr);
  EXPECT_EQ(r.where->kind, ExprAst::Kind::kCompare);
}

TEST(ParserTest, MultiVariableRange) {
  auto program = Parse(
      "range of S is Students, E is Employees\n"
      "retrieve unique (S.dept.name, E.name) by S.dept "
      "where S.advisor = E.name");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 3u);  // two ranges + retrieve
  EXPECT_EQ((*program)[0].range->var, "S");
  EXPECT_EQ((*program)[1].range->var, "E");
  const auto& r = *(*program)[2].retrieve;
  EXPECT_TRUE(r.unique);
  EXPECT_EQ(r.targets.size(), 2u);
  EXPECT_EQ(r.by.size(), 1u);
}

TEST(ParserTest, AggregateWithCorrelatedSubquery) {
  auto program = ParseStatement(
      "retrieve (EMP.name, min(E.kids.age from E in Employees "
      "where E.dept.floor = EMP.dept.floor))");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& r = *program->retrieve;
  ASSERT_EQ(r.targets.size(), 2u);
  const auto& agg = r.targets[1].second;
  EXPECT_EQ(agg->kind, ExprAst::Kind::kAgg);
  EXPECT_EQ(agg->text, "min");
  ASSERT_EQ(agg->agg_from.size(), 1u);
  EXPECT_EQ(agg->agg_from[0].first, "E");
  ASSERT_NE(agg->agg_where, nullptr);
}

TEST(ParserTest, ArrayIndexingAndSlices) {
  auto q = ParseStatement("retrieve (TopTen[5].name, TopTen[2..last])");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& t0 = q->retrieve->targets[0].second;
  EXPECT_EQ(t0->kind, ExprAst::Kind::kField);
  EXPECT_EQ(t0->base->kind, ExprAst::Kind::kIndex);
  const auto& t1 = q->retrieve->targets[1].second;
  EXPECT_EQ(t1->kind, ExprAst::Kind::kSlice);
  EXPECT_TRUE(t1->hi_is_last);
  auto last = ParseStatement("retrieve (TopTen[last])");
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last->retrieve->targets[0].second->index_is_last);
}

TEST(ParserTest, SetExpressionsAndLiterals) {
  auto q = ParseStatement(
      "retrieve (x) from x in (A - B union C) where x in {1, 2, 3} into D");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->retrieve->into, "D");
  EXPECT_EQ(q->retrieve->from[0].collection->kind, ExprAst::Kind::kBinary);
  EXPECT_EQ(q->retrieve->from[0].collection->text, "union");
  EXPECT_EQ(q->retrieve->where->text, "in");
  EXPECT_EQ(q->retrieve->where->rhs->kind, ExprAst::Kind::kSetLit);
}

TEST(ParserTest, TupleLiteralsAndGrouping) {
  auto named = ParseStatement("retrieve ( (a: 1, b: \"x\") )");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->retrieve->targets[0].second->kind, ExprAst::Kind::kTupLit);
  auto grouped = ParseStatement("retrieve ( (1 + 2) * 3 )");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->retrieve->targets[0].second->kind,
            ExprAst::Kind::kBinary);
}

TEST(ParserTest, DefineFunction) {
  auto program = ParseStatement(
      "define Employee function get_ssnum (kname: char[]) returns int4 {\n"
      "  retrieve (this.kids.ssnum) where (this.kids.name = kname)\n"
      "}");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& f = *program->define_function;
  EXPECT_EQ(f.type_name, "Employee");
  EXPECT_EQ(f.func_name, "get_ssnum");
  ASSERT_EQ(f.params.size(), 1u);
  EXPECT_EQ(f.params[0].first, "kname");
  ASSERT_NE(f.body, nullptr);
}

TEST(ParserTest, BooleanPrecedence) {
  // a = 1 or b = 2 and not c = 3 parses as (a=1) or ((b=2) and (not c=3)).
  auto q = ParseStatement("retrieve (x) where a = 1 or b = 2 and not c = 3");
  ASSERT_TRUE(q.ok());
  const auto& w = q->retrieve->where;
  EXPECT_EQ(w->kind, ExprAst::Kind::kOr);
  EXPECT_EQ(w->rhs->kind, ExprAst::Kind::kAnd);
  EXPECT_EQ(w->rhs->rhs->kind, ExprAst::Kind::kNot);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("retrieve name").ok());           // missing parens
  EXPECT_FALSE(Parse("retrieve () from").ok());        // dangling from
  EXPECT_FALSE(Parse("define type : (a: int4)").ok()); // missing name
  EXPECT_FALSE(Parse("create X").ok());                // missing type
  EXPECT_FALSE(Parse("range of X Employees").ok());    // missing `is`
  EXPECT_FALSE(Parse("retrieve (a.)").ok());           // dangling dot
  EXPECT_FALSE(Parse("bogus statement").ok());
}

TEST(ParserTest, MethodCallsAndBuiltins) {
  auto q = ParseStatement("retrieve (P.boss(), deref(x), mkref(y))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->retrieve->targets[0].second->kind, ExprAst::Kind::kCall);
  EXPECT_EQ(q->retrieve->targets[0].second->text, "boss");
  EXPECT_NE(q->retrieve->targets[0].second->base, nullptr);
  EXPECT_EQ(q->retrieve->targets[1].second->text, "deref");
  EXPECT_EQ(q->retrieve->targets[1].second->base, nullptr);
}

}  // namespace
}  // namespace excess
