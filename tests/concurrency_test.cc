// Concurrency invariants of the server's snapshot-epoch design, run under
// ThreadSanitizer in CI (ctest label `concurrency`):
//  - epoch capture/materialize produces a byte-identical database clone;
//  - concurrent readers against a committing writer only ever observe
//    committed epochs, monotonically (the epoch/count pair never moves
//    backwards on one connection), while every acknowledged write is
//    durable after drain + reopen;
//  - wire reads during a mixed workload agree with a single-threaded
//    reference session executing the same statements;
//  - the metrics registry takes concurrent increments, observes, and
//    snapshots without losing a count.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/epoch.h"
#include "server/server.h"
#include "storage/serialize.h"
#include "university/university.h"
#include "util/status.h"

namespace excess {
namespace server {
namespace {

namespace fs = std::filesystem;

std::string UniqueSock() {
  static std::atomic<int> counter{0};
  return "/tmp/exconc_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sock_ = UniqueSock();
    dir_ = fs::temp_directory_path() /
           ("excess_conc_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("EXCESS_DB_PATH");
    ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    ::unlink(sock_.c_str());
    ::unsetenv("EXCESS_WAL_FSYNC");
    ::unsetenv("EXCESS_DB_PATH");
  }

  std::string sock_;
  fs::path dir_;
};

// --- epoch snapshot correctness ---------------------------------------------

TEST_F(ConcurrencyTest, EpochCloneIsByteIdentical) {
  Database db;
  MethodRegistry methods(&db.catalog());
  ASSERT_TRUE(BuildUniversity(&db, UniversityParams{}).ok());
  Session writer(&db, &methods);
  ASSERT_TRUE(writer
                  .Execute("define Employee function bonus () returns int4 "
                           "{ retrieve (this.salary / 10) }")
                  .ok());
  ASSERT_TRUE(writer.Execute("range of E is Employees").ok());

  auto snap = CaptureEpoch(7, db, writer, methods);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 7u);

  Database clone;
  MethodRegistry clone_methods(&clone.catalog());
  std::vector<std::pair<std::string, ExprAstPtr>> ranges;
  ASSERT_TRUE(
      MaterializeEpoch(*snap, &clone, &clone_methods, &ranges).ok());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(clone),
            storage::CanonicalDatabaseBytes(db));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, "E");

  // The clone answers queries — including method dispatch and the restored
  // range variable — exactly like the original.
  Session ref(&db, &methods);
  ref.set_ranges(ranges);
  Session cloned(&clone, &clone_methods);
  cloned.set_ranges(ranges);
  for (const char* q :
       {"retrieve ( count(Employees) )", "retrieve (n: E.name) where "
                                     "E.dept.floor = 2",
        "retrieve ( sum(e.bonus() from e in Employees) )"}) {
    auto a = ref.Execute(q);
    auto b = cloned.Execute(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    EXPECT_EQ((*a)->ToString(), (*b)->ToString()) << q;
  }
}

// --- readers vs. committing writer ------------------------------------------

TEST_F(ConcurrencyTest, ReadersObserveMonotoneCommittedPrefixes) {
  constexpr int kAppends = 120;
  constexpr int kReaders = 4;
  std::string db_path = (dir_ / "rw.db").string();
  ServerOptions opts;
  opts.unix_path = sock_;
  opts.workers = 4;
  opts.db_path = db_path;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  std::atomic<bool> writer_done{false};
  std::atomic<int> acked{0};
  std::thread writer([&] {
    auto client = Client::ConnectUnix(sock_);
    ASSERT_TRUE(client.ok());
    for (int i = 1; i <= kAppends; ++i) {
      auto r = client->Execute("append " + std::to_string(i) + " to Nums",
                               10'000);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r->code, StatusCode::kOk) << r->message;
      acked.store(i);
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<int> violations{0};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto client = Client::ConnectUnix(sock_);
      if (!client.ok()) {
        violations.fetch_add(1);
        return;
      }
      uint64_t last_epoch = 0;
      int64_t last_count = -1;
      while (!writer_done.load()) {
        int upper_before = acked.load();
        auto r = client->Execute("retrieve ( count(Nums) )", 10'000);
        if (!r.ok()) {
          violations.fetch_add(1);
          return;
        }
        if (r->code == StatusCode::kResourceExhausted) continue;  // shed
        if (r->code != StatusCode::kOk) {
          violations.fetch_add(1);
          return;
        }
        int64_t count = std::stoll(r->result);
        // Only committed state is visible: at least what was acked before
        // the request, never beyond the total, and never going backwards
        // on this connection (epochs are monotone per connection).
        if (count < upper_before || count > kAppends ||
            r->epoch < last_epoch ||
            (r->epoch == last_epoch && count != last_count) ||
            (r->epoch > last_epoch && count < last_count)) {
          violations.fetch_add(1);
          return;
        }
        last_epoch = r->epoch;
        last_count = count;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Serial acked writes are the committed prefix: after drain + reopen the
  // database holds exactly appends 1..kAppends.
  server->Shutdown(/*grace_ms=*/5'000);
  server.reset();
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(db_path).ok());
  auto total = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ((*total)->ToString(), std::to_string(kAppends));
  auto sum = s.Execute("retrieve ( sum(x from x in Nums) )");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->ToString(),
            std::to_string(kAppends * (kAppends + 1) / 2));
}

// --- mixed workload vs. reference session -----------------------------------

TEST_F(ConcurrencyTest, WireReadsMatchSingleThreadedReference) {
  const std::vector<std::string> seeds = {
      "define type Dept: ( name: char[], floor: int4 )",
      "create Depts: { Dept }",
      "append (name: \"cs\", floor: 1) to Depts",
      "append (name: \"ee\", floor: 2) to Depts",
      "append (name: \"math\", floor: 2) to Depts",
      "create Nums: { int4 }",
      "append all {1, 2, 3, 4, 5, 6} to Nums",
      "range of D is Depts",
  };
  const std::vector<std::string> queries = {
      "retrieve ( count(Depts) )",
      "retrieve (n: D.name) where D.floor = 2",
      "retrieve ( sum(x * x from x in Nums) )",
      "retrieve (a: x, b: y) from x in Nums, y in Nums where x = y",
      "retrieve ( count(x from x in Nums where x > 3) )",
  };

  // Reference: one session, one thread.
  Database ref_db;
  MethodRegistry ref_methods(&ref_db.catalog());
  Session ref(&ref_db, &ref_methods);
  std::vector<std::string> expected;
  for (const auto& stmt : seeds) ASSERT_TRUE(ref.Execute(stmt).ok()) << stmt;
  for (const auto& q : queries) {
    auto r = ref.Execute(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    expected.push_back(*r == nullptr ? "" : (*r)->ToString());
  }

  ServerOptions opts;
  opts.unix_path = sock_;
  opts.workers = 4;
  Server server(opts);
  for (const auto& stmt : seeds) {
    ASSERT_TRUE(server.ExecuteLocal(stmt).ok()) << stmt;
  }
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto client = Client::ConnectUnix(sock_);
      if (!client.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      for (int round = 0; round < 3; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto r = client->Execute(queries[qi], 10'000);
          if (!r.ok() || r->code != StatusCode::kOk ||
              r->result != expected[qi]) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  server.Shutdown();
}

// --- metrics registry under fire --------------------------------------------

TEST_F(ConcurrencyTest, MetricsRegistryIsThreadSafe) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&] {
    // Concurrent snapshots and lookups must never crash or wedge.
    while (!stop_snapshots.load()) {
      (void)reg.Snapshot();
      (void)reg.GetCounter("conc.hammer.extra");
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto* mine = reg.GetCounter("conc.hammer.c" + std::to_string(t));
      auto* shared = reg.GetCounter("conc.hammer.shared");
      auto* hist = reg.GetHistogram("conc.hammer.h");
      for (int i = 0; i < kIters; ++i) {
        mine->Increment();
        shared->Increment();
        hist->Observe(i & 1023);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_snapshots.store(true);
  snapshotter.join();

  EXPECT_EQ(reg.GetCounter("conc.hammer.shared")->value(),
            static_cast<int64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("conc.hammer.c" + std::to_string(t))->value(),
              kIters);
  }
  EXPECT_EQ(reg.GetHistogram("conc.hammer.h")->count(),
            static_cast<int64_t>(kThreads) * kIters);
  reg.ResetForTest();
}

}  // namespace
}  // namespace server
}  // namespace excess
