// End-to-end EXCESS execution: the paper's §2.2 and §5 queries run through
// parse → translate → (optimize) → evaluate against the Figure 1 database,
// checked against hand-walked references.

#include "excess/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "university/university.h"
#include "util/string_util.h"

namespace excess {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.num_departments = 5;
    params_.num_employees = 40;
    params_.num_students = 30;
    params_.num_floors = 5;
    ASSERT_TRUE(BuildUniversity(&db_, params_).ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    session_ = std::make_unique<Session>(&db_, registry_.get());
  }

  ValuePtr Run(const std::string& q) {
    auto r = session_->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << q;
    return r.ok() ? *r : nullptr;
  }

  ValuePtr EmployeeAt(int i) {
    ValuePtr employees = *db_.NamedValue("Employees");
    return *db_.store().Deref(employees->entries()[i].value->oid());
  }

  UniversityParams params_;
  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, Figure1DdlExecutes) {
  // The DDL of Figure 1 runs verbatim against a fresh database.
  Database fresh;
  MethodRegistry methods(&fresh.catalog());
  Session s(&fresh, &methods);
  auto r = s.Execute(R"(
    define type Person: (
      ssnum: int4, name: char[], street: char[20],
      city: char[10], zip: int4, birthday: Date )
    define type Employee: (
      jobtitle: char[20], dept: ref Department, manager: ref Employee,
      sub_ords: { ref Employee }, salary: int4, kids: { Person } )
      inherits Person
    define type Student: (
      gpa: float4, dept: ref Department, advisor: ref Employee )
      inherits Person
    define type Department: (
      division: char[], name: char[], floor: int4,
      employees: { ref Employee } )
    create Employees: { ref Employee }
    create Students: { ref Student }
    create Departments: { ref Department }
    create TopTen: array [1..10] of ref Employee
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(fresh.catalog().HasType("Student"));
  EXPECT_TRUE(fresh.catalog().IsSubtype("Employee", "Person"));
  EXPECT_TRUE(fresh.catalog().Validate().ok());
  EXPECT_TRUE(fresh.HasNamed("TopTen"));
  // Inherited + declared attributes visible on Employee.
  auto eff = fresh.catalog().EffectiveSchema("Employee");
  ASSERT_TRUE(eff.ok());
  EXPECT_GE((*eff)->fields().size(), 12u);
}

TEST_F(SessionTest, FirstPaperQueryKidsOnFloor2) {
  // §2.2: names of the children of employees working on the 2nd floor.
  ValuePtr got = Run(
      "range of E is Employees\n"
      "retrieve (C.name) from C in E.kids where E.dept.floor = 2");
  ASSERT_NE(got, nullptr);

  std::vector<ValuePtr> expected;
  ValuePtr employees = *db_.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    if ((*dept->Field("floor"))->as_int() != 2) continue;
    for (const auto& kid : (*emp->Field("kids"))->entries()) {
      expected.push_back(*kid.value->Field("name"));
    }
  }
  EXPECT_TRUE(got->Equals(*Value::SetOf(expected)))
      << got->ToString();
  EXPECT_GT(got->TotalCount(), 0);
}

TEST_F(SessionTest, SecondPaperQueryCorrelatedAggregate) {
  // §2.2 second example with `age` as a virtual field (method) of Person,
  // computed from a fixed "current date".
  ValuePtr r0 = Run(
      "define Person function age () returns int4 {"
      "  retrieve ((20000 - this.birthday) / 365) }");
  (void)r0;
  ValuePtr got = Run(
      "range of EMP is Employees\n"
      "retrieve (EMP.name, min(E.kids.age from E in Employees\n"
      "                        where E.dept.floor = EMP.dept.floor))");
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->is_set());
  EXPECT_EQ(got->TotalCount(), params_.num_employees);

  // Reference for one employee: min kid age among same-floor employees.
  ValuePtr employees = *db_.NamedValue("Employees");
  ValuePtr emp0 = EmployeeAt(0);
  int64_t floor0 =
      (*(*db_.store().Deref((*emp0->Field("dept"))->oid()))->Field("floor"))
          ->as_int();
  // `this.birthday` is a date, so the arithmetic runs in floating point —
  // the reference reproduces the engine's exact computation.
  double expected_min = std::numeric_limits<double>::max();
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    if ((*dept->Field("floor"))->as_int() != floor0) continue;
    for (const auto& kid : (*emp->Field("kids"))->entries()) {
      double age =
          (20000.0 - static_cast<double>(
                         (*kid.value->Field("birthday"))->as_int())) /
          365.0;
      expected_min = std::min(expected_min, age);
    }
  }
  ValuePtr expected_row = Value::Tuple(
      {"name", "min"}, {*emp0->Field("name"), Value::Float(expected_min)});
  EXPECT_GE(got->CountOf(expected_row), 1) << got->ToString();
}

TEST_F(SessionTest, Figure3TopTenQuery) {
  ValuePtr got = Run("retrieve (TopTen[5].name, TopTen[5].salary)");
  ASSERT_NE(got, nullptr);
  ValuePtr top = *db_.NamedValue("TopTen");
  ValuePtr emp5 = *db_.store().Deref(top->elems()[4]->oid());
  ValuePtr expected =
      Value::Tuple({"name", "salary"},
                   {*emp5->Field("name"), *emp5->Field("salary")});
  EXPECT_TRUE(got->Equals(*expected)) << got->ToString();
}

TEST_F(SessionTest, Figure4ImplicitRange) {
  // Functional join with an implicit range over Employees.
  ValuePtr got = Run(
      "retrieve (Employees.dept.name) where Employees.city = \"city_0\"");
  ASSERT_NE(got, nullptr);
  std::vector<ValuePtr> expected;
  ValuePtr employees = *db_.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    if ((*emp->Field("city"))->as_string() != "city_0") continue;
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    expected.push_back(*dept->Field("name"));
  }
  EXPECT_TRUE(got->Equals(*Value::SetOf(expected))) << got->ToString();
}

TEST_F(SessionTest, Section5Example1GroupedJoin) {
  // Example 1 of §5 over the advisor-as-name variant of the database.
  Database db2;
  UniversityParams p2 = params_;
  p2.advisor_as_name = true;
  ASSERT_TRUE(BuildUniversity(&db2, p2).ok());
  MethodRegistry m2(&db2.catalog());
  Session s2(&db2, &m2);
  auto got = s2.Execute(
      "range of S is Students, E is Employees\n"
      "retrieve unique (S.dept.name, E.name) by S.dept "
      "where S.advisor = E.name");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE((*got)->is_set());
  EXPECT_GT((*got)->TotalCount(), 0);
  // Every group member is a distinct (dept name, advisor name) pair and
  // group members are deduplicated.
  for (const auto& group : (*got)->entries()) {
    ASSERT_TRUE(group.value->is_set());
    for (const auto& member : group.value->entries()) {
      EXPECT_EQ(member.count, 1);
      ASSERT_TRUE(member.value->is_tuple());
      EXPECT_EQ(member.value->num_fields(), 2u);
    }
  }
}

TEST_F(SessionTest, Section5Example2GroupedSelection) {
  // Example 2 of §5: student names grouped by division, floor-5 majors.
  ValuePtr got = Run(
      "range of S is Students\n"
      "retrieve (S.name) by S.dept.division where S.dept.floor = 5");
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->is_set());

  // Reference: students whose dept floor is 5, grouped by division.
  std::map<std::string, std::vector<ValuePtr>> by_division;
  ValuePtr students = *db_.NamedValue("Students");
  for (const auto& e : students->entries()) {
    ValuePtr s = *db_.store().Deref(e.value->oid());
    ValuePtr dept = *db_.store().Deref((*s->Field("dept"))->oid());
    if ((*dept->Field("floor"))->as_int() != 5) continue;
    by_division[(*dept->Field("division"))->as_string()].push_back(
        *s->Field("name"));
  }
  std::vector<ValuePtr> groups;
  for (auto& [div, names] : by_division) {
    groups.push_back(Value::SetOf(names));
  }
  EXPECT_TRUE(got->Equals(*Value::SetOf(groups))) << got->ToString();
}

TEST_F(SessionTest, GetSsnumMethodFromPaper) {
  // The paper writes the body with implicit per-kid iteration
  // (`this.kids.ssnum where this.kids.name = kname`); our surface form
  // makes the iteration explicit, same semantics.
  Run("define Employee function get_ssnum (kname: char[]) returns int4 {"
      "  retrieve (K.ssnum) from K in this.kids where K.name = kname }");
  ValuePtr emp = EmployeeAt(3);
  ValuePtr kid = (*emp->Field("kids"))->entries()[0].value;
  std::string kname = (*kid->Field("name"))->as_string();
  // Invoke on every employee through the range variable.
  ValuePtr got = Run(StrCat(
      "range of E is Employees retrieve (E.get_ssnum(\"", kname, "\"))"));
  ASSERT_NE(got, nullptr);
  // The kid's employee yields a singleton {ssnum}; everyone else {}.
  ValuePtr hit = Value::SetOf({*kid->Field("ssnum")});
  EXPECT_GE(got->CountOf(hit), 1) << got->ToString();
  EXPECT_GE(got->CountOf(Value::EmptySet()), 1);
}

TEST_F(SessionTest, IntoCreatesNamedObject) {
  Run("retrieve (Employees.salary) where Employees.salary >= 100000 "
      "into RichSalaries");
  ASSERT_TRUE(db_.HasNamed("RichSalaries"));
  ValuePtr stored = *db_.NamedValue("RichSalaries");
  ValuePtr again = Run("retrieve (x) from x in RichSalaries where x >= 100000");
  EXPECT_TRUE(stored->Equals(*again));
  // And `into` an existing object overwrites it.
  Run("retrieve (Employees.salary) into RichSalaries");
  EXPECT_EQ((*db_.NamedValue("RichSalaries"))->TotalCount(),
            params_.num_employees);
}

TEST_F(SessionTest, MultisetOperatorsInFrom) {
  Run("retrieve (Employees.salary) into A");
  Run("retrieve (Employees.salary) where Employees.salary >= 100000 into B");
  ValuePtr diff = Run("retrieve (x) from x in (A - B)");
  ValuePtr expected = Run(
      "retrieve (Employees.salary) where Employees.salary < 100000");
  EXPECT_TRUE(diff->Equals(*expected));
  ValuePtr uni = Run("retrieve (x) from x in (B union A)");
  EXPECT_TRUE(uni->Equals(*Run("retrieve (x) from x in A")));
}

TEST_F(SessionTest, UniqueEliminatesDuplicates) {
  ValuePtr all = Run("retrieve (Employees.dept.name)");
  ValuePtr uniq = Run("retrieve unique (Employees.dept.name)");
  EXPECT_EQ(uniq->TotalCount(), uniq->DistinctCount());
  EXPECT_EQ(uniq->DistinctCount(), all->DistinctCount());
  EXPECT_GT(all->TotalCount(), uniq->TotalCount());
}

TEST_F(SessionTest, ArraySlicing) {
  ValuePtr tail = Run("retrieve (TopTen[8..last])");
  ASSERT_TRUE(tail->is_array());
  EXPECT_EQ(tail->ArrayLength(), 3);
  ValuePtr lastref = Run("retrieve (TopTen[last])");
  EXPECT_TRUE(lastref->is_ref());
  EXPECT_TRUE(tail->elems()[2]->Equals(*lastref));
}

TEST_F(SessionTest, SetAndTupleLiterals) {
  ValuePtr s = Run("retrieve ( {1, 2, 2, 3} )");
  EXPECT_EQ(s->TotalCount(), 4);
  EXPECT_EQ(s->CountOf(Value::Int(2)), 2);
  ValuePtr t = Run("retrieve ( (a: 1, b: \"x\") )");
  ASSERT_TRUE(t->is_tuple());
  EXPECT_EQ((*t->Field("b"))->as_string(), "x");
  ValuePtr arr = Run("retrieve ( [1, 2, 3] )");
  ASSERT_TRUE(arr->is_array());
  EXPECT_EQ(arr->ArrayLength(), 3);
}

TEST_F(SessionTest, CountAggregateOverNamedSet) {
  ValuePtr n = Run("retrieve ( count(Employees) )");
  EXPECT_EQ(n->as_int(), params_.num_employees);
  ValuePtr salaries = Run("retrieve ( max(Employees.salary) )");
  ValuePtr all = Run("retrieve (Employees.salary)");
  int64_t expected = 0;
  for (const auto& e : all->entries()) {
    expected = std::max(expected, e.value->as_int());
  }
  EXPECT_EQ(salaries->as_int(), expected);
}

TEST_F(SessionTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(session_->Execute("retrieve (Nobody.name)").ok());
  EXPECT_FALSE(session_->Execute("retrieve (Employees.bogusfield)").ok());
  EXPECT_FALSE(session_->Execute("retrieve (x) from x in 42").ok());
  EXPECT_FALSE(session_->Execute("create Employees: { int4 }").ok());
  EXPECT_FALSE(session_->Execute("define type Person: (x: int4)").ok());
}

TEST_F(SessionTest, AggregateVariableShadowsSessionRange) {
  // A session-level `range of E` must not collide with (or leak into) an
  // aggregate's own `from E in ...` — the aggregate scopes its variables
  // (§2.2). Regression test for the environment-shadowing fix.
  Run("range of E is Employees retrieve (E.name) where E.dept.floor = 1");
  ValuePtr got = Run(
      "range of EMP is Employees\n"
      "retrieve (EMP.name, min(E.salary from E in Employees\n"
      "                        where E.dept.floor = EMP.dept.floor))");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->TotalCount(), params_.num_employees);
  // And an aggregate variable shadowing an *outer used* variable of the
  // same name resolves innermost.
  ValuePtr shadow = Run(
      "retrieve (E.name, count(E from E in E.kids))"
      " from E in Employees");
  ASSERT_NE(shadow, nullptr);
  for (const auto& row : shadow->entries()) {
    EXPECT_EQ((*row.value->Field("count"))->as_int(), 2);  // kids per emp
  }
}

TEST_F(SessionTest, OptimizedAndUnoptimizedAgree) {
  Session::Options raw;
  raw.optimize = false;
  Session unopt(&db_, registry_.get(), raw);
  const char* q =
      "retrieve (Employees.dept.name) where Employees.city = \"city_1\"";
  auto a = session_->Execute(q);
  auto b = unopt.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*a)->Equals(**b));
}

}  // namespace
}  // namespace excess
