// Tests for the five OID-domain rules of §3.1 under multiple inheritance.
// The rules quantify over infinite domains; we verify them as properties of
// the finite prefix the store actually allocates plus the structural
// guarantees (per-type partition, subtype containment) that extend to the
// full domain by construction.

#include <gtest/gtest.h>

#include <set>

#include "objects/database.h"
#include "objects/store.h"

namespace excess {
namespace {

// Hierarchy: Person <- {Student, Employee}; TA inherits from both
// (multiple inheritance); Course is unrelated.
class OidDomainsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog& c = db_.catalog();
    ASSERT_TRUE(c.DefineType("Person", Schema::Tup({})).ok());
    ASSERT_TRUE(c.DefineType("Student", Schema::Tup({}), {"Person"}).ok());
    ASSERT_TRUE(c.DefineType("Employee", Schema::Tup({}), {"Person"}).ok());
    ASSERT_TRUE(c.DefineType("TA", Schema::Tup({}), {"Student", "Employee"})
                    .ok());
    ASSERT_TRUE(c.DefineType("Course", Schema::Tup({})).ok());
  }

  Oid New(const std::string& type, int i) {
    auto r = db_.store().Create(type, Value::Tuple({"i"}, {Value::Int(i)}));
    EXPECT_TRUE(r.ok());
    return *r;
  }

  Database db_;
};

TEST_F(OidDomainsTest, Rule1DomainsAreUnbounded) {
  // |Odom(t)| = ∞: allocation never exhausts a type's domain — serials are
  // strictly increasing and 64-bit; allocate a bunch and observe no reuse.
  std::set<uint64_t> serials;
  for (int i = 0; i < 1000; ++i) {
    Oid oid = New("Person", i);
    EXPECT_TRUE(serials.insert(oid.serial).second) << "serial reused";
  }
}

TEST_F(OidDomainsTest, Rule2ProperSupertypeResidueIsUnbounded) {
  // |Odom(Person) − ∪Odom(subtypes)| = ∞: OIDs allocated with exact type
  // Person are in no subtype's domain, and allocation of those never ends.
  for (int i = 0; i < 100; ++i) {
    Oid oid = New("Person", 10000 + i);
    EXPECT_TRUE(db_.store().InDomain(oid, "Person"));
    EXPECT_FALSE(db_.store().InDomain(oid, "Student"));
    EXPECT_FALSE(db_.store().InDomain(oid, "Employee"));
    EXPECT_FALSE(db_.store().InDomain(oid, "TA"));
  }
}

TEST_F(OidDomainsTest, Rule3SubtypeDomainsAreContained) {
  // Person → Student ⇒ Odom(Student) ⊆ Odom(Person): every Student OID is a
  // Person OID.
  for (int i = 0; i < 50; ++i) {
    Oid oid = New("Student", 20000 + i);
    EXPECT_TRUE(db_.store().InDomain(oid, "Student"));
    EXPECT_TRUE(db_.store().InDomain(oid, "Person"));
    EXPECT_FALSE(db_.store().InDomain(oid, "Employee"));
  }
}

TEST_F(OidDomainsTest, Rule4UnrelatedTypesHaveDisjointDomains) {
  // Person and Course share no descendant ⇒ no common OIDs.
  ASSERT_TRUE(db_.catalog().SharesNoDescendant("Person", "Course"));
  Oid p = New("Person", 1);
  Oid c = New("Course", 1);
  EXPECT_FALSE(db_.store().InDomain(p, "Course"));
  EXPECT_FALSE(db_.store().InDomain(c, "Person"));
  EXPECT_NE(p.type_id, c.type_id);
  // Student and Employee DO share a descendant (TA), so rule 4 does not
  // apply — and indeed a TA OID witnesses the intersection.
  ASSERT_FALSE(db_.catalog().SharesNoDescendant("Student", "Employee"));
}

TEST_F(OidDomainsTest, Rule5MultipleInheritanceIntersection) {
  // {Student, Employee} → TA ⇒ Odom(TA) ⊆ Odom(Student) ∩ Odom(Employee):
  // a TA OID is simultaneously a Student, Employee, and Person OID.
  Oid ta = New("TA", 7);
  EXPECT_TRUE(db_.store().InDomain(ta, "TA"));
  EXPECT_TRUE(db_.store().InDomain(ta, "Student"));
  EXPECT_TRUE(db_.store().InDomain(ta, "Employee"));
  EXPECT_TRUE(db_.store().InDomain(ta, "Person"));
  EXPECT_FALSE(db_.store().InDomain(ta, "Course"));
}

TEST_F(OidDomainsTest, TypeMigrationMovesDomainMembership) {
  // §3.1: "these semantics allow type migration to occur". A Person object
  // becoming a Student gains membership in Odom(Student) while staying in
  // Odom(Person).
  Oid oid = New("Person", 99);
  ASSERT_FALSE(db_.store().InDomain(oid, "Student"));
  ASSERT_TRUE(db_.store().MigrateType(oid, "Student").ok());
  EXPECT_TRUE(db_.store().InDomain(oid, "Student"));
  EXPECT_TRUE(db_.store().InDomain(oid, "Person"));
  // Further migration Student -> TA is legal; TA ≤ Person (allocation).
  ASSERT_TRUE(db_.store().MigrateType(oid, "TA").ok());
  EXPECT_TRUE(db_.store().InDomain(oid, "Employee"));
}

TEST_F(OidDomainsTest, DomainMembershipOfMissingObjects) {
  Oid bogus{123, 456};
  EXPECT_FALSE(db_.store().InDomain(bogus, "Person"));
}

}  // namespace
}  // namespace excess
