// Executes the paper's algebraic query examples (Figures 3 and 4) against
// the Figure 1 university database and checks them against independently
// computed references.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/builder.h"
#include "core/eval.h"
#include "core/infer.h"
#include "university/university.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.num_departments = 4;
    params_.num_employees = 30;
    params_.num_students = 20;
    ASSERT_TRUE(BuildUniversity(&db_, params_).ok());
  }
  Result<ValuePtr> Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    return ev.Eval(e);
  }
  UniversityParams params_;
  Database db_;
};

// Figure 3: retrieve (TopTen[5].name, TopTen[5].salary)
//   π_{name,salary}(DEREF(ARR_EXTRACT_5(TopTen)))
TEST_F(PaperExamplesTest, Figure3TopTenElement) {
  ExprPtr q = Project({"name", "salary"},
                      Deref(ArrExtract(5, Var("TopTen"))));
  ValuePtr r = *Run(q);
  ASSERT_TRUE(r->is_tuple());
  EXPECT_EQ(r->num_fields(), 2u);
  // Reference: dereference the 5th element by hand.
  ValuePtr top = *db_.NamedValue("TopTen");
  ValuePtr emp = *db_.store().Deref(top->elems()[4]->oid());
  EXPECT_TRUE((*r->Field("name"))->Equals(**emp->Field("name")));
  EXPECT_TRUE((*r->Field("salary"))->Equals(**emp->Field("salary")));
}

TEST_F(PaperExamplesTest, Figure3TypeChecks) {
  ExprPtr q = Project({"name", "salary"},
                      Deref(ArrExtract(5, Var("TopTen"))));
  TypeInference infer(&db_);
  auto s = infer.Infer(q);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->ToString(), "(name: string, salary: int4)");
}

// Figure 4: retrieve (Employees.dept.name) where Employees.city = "city_0"
// as the four-stage SET_APPLY chain of the paper.
TEST_F(PaperExamplesTest, Figure4FunctionalJoin) {
  ExprPtr q = SetApply(
      Project({"name"}, Input()),
      SetApply(
          Deref(TupExtract("dept", Input())),
          SetApply(Comp(Eq(TupExtract("city", Input()), StrLit("city_0")),
                        Input()),
                   SetApply(Deref(Input()), Var("Employees")))));
  ValuePtr got = *Run(q);

  // Independent reference: walk the store directly.
  std::vector<ValuePtr> expected;
  ValuePtr employees = *db_.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    if ((*emp->Field("city"))->as_string() != "city_0") continue;
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    for (int64_t k = 0; k < e.count; ++k) {
      expected.push_back(Value::Tuple({"name"}, {*dept->Field("name")}));
    }
  }
  EXPECT_TRUE(got->Equals(*Value::SetOf(expected)))
      << "got: " << got->ToString();
  EXPECT_GT(got->TotalCount(), 0);
}

TEST_F(PaperExamplesTest, Figure4WithDuplicationFactor) {
  // The same query over a database whose Employees occurrences are each
  // duplicated; result cardinalities scale with the factor.
  Database db2;
  UniversityParams p2 = params_;
  p2.duplication = 3;
  ASSERT_TRUE(BuildUniversity(&db2, p2).ok());
  ExprPtr q = SetApply(
      Project({"name"}, Input()),
      SetApply(
          Deref(TupExtract("dept", Input())),
          SetApply(Comp(Eq(TupExtract("city", Input()), StrLit("city_0")),
                        Input()),
                   SetApply(Deref(Input()), Var("Employees")))));
  Evaluator ev1(&db_);
  Evaluator ev2(&db2);
  ValuePtr r1 = *ev1.Eval(q);
  ValuePtr r2 = *ev2.Eval(q);
  EXPECT_EQ(r2->TotalCount(), 3 * r1->TotalCount());
  EXPECT_EQ(r2->DistinctCount(), r1->DistinctCount());
}

// §2.2 example 1 shape: names of children of employees working on floor 2
// — exercises nested-set iteration via SET_COLLAPSE.
TEST_F(PaperExamplesTest, KidsOfSecondFloorEmployees) {
  // SET_COLLAPSE(SET_APPLY_{SET_APPLY_{π_name}(kids(COMP_floor=2 …))}).
  ExprPtr per_employee = SetApply(
      Project({"name"}, Input()),
      TupExtract("kids",
                 Comp(Eq(TupExtract("floor", Deref(TupExtract("dept",
                                                              Input()))),
                         IntLit(2)),
                      Input())));
  ExprPtr q = SetCollapse(
      SetApply(per_employee, SetApply(Deref(Input()), Var("Employees"))));
  ValuePtr got = *Run(q);

  std::vector<ValuePtr> expected;
  ValuePtr employees = *db_.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    if ((*dept->Field("floor"))->as_int() != 2) continue;
    for (const auto& kid : (*emp->Field("kids"))->entries()) {
      expected.push_back(
          Value::Tuple({"name"}, {*kid.value->Field("name")}));
    }
  }
  EXPECT_TRUE(got->Equals(*Value::SetOf(expected)));
  EXPECT_GT(got->TotalCount(), 0);
}

// Null pipeline: COMP makes the employee dne; kids-extraction of dne is
// dne; the final multiset silently drops it. This is the paper's "dne
// nulls are discarded whenever possible" in action.
TEST_F(PaperExamplesTest, DnePipelineDiscards) {
  ExprPtr q = SetApply(
      TupExtract("kids",
                 Comp(Eq(TupExtract("city", Input()), StrLit("nowhere")),
                      Input())),
      SetApply(Deref(Input()), Var("Employees")));
  ValuePtr got = *Run(q);
  EXPECT_EQ(got->TotalCount(), 0);
}

// §2.2 example 2: per-employee min age of kids of same-floor employees —
// here simplified to min birthday (age needs a method; see methods tests).
TEST_F(PaperExamplesTest, AggregateOverCorrelatedSubquery) {
  ExprPtr same_floor_kid_birthdays = SetCollapse(SetApply(
      SetApply(TupExtract("birthday", Input()),
               TupExtract("kids", Input())),
      Select(Eq(TupExtract("floor", Deref(TupExtract("dept", Input()))),
                IntLit(1)),
             SetApply(Deref(Input()), Var("Employees")))));
  ExprPtr q = Agg("min", same_floor_kid_birthdays);
  ValuePtr got = *Run(q);
  ASSERT_TRUE(got->kind() == ValueKind::kDate) << got->ToString();

  int64_t expected = std::numeric_limits<int64_t>::max();
  ValuePtr employees = *db_.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *db_.store().Deref(e.value->oid());
    ValuePtr dept = *db_.store().Deref((*emp->Field("dept"))->oid());
    if ((*dept->Field("floor"))->as_int() != 1) continue;
    for (const auto& kid : (*emp->Field("kids"))->entries()) {
      expected = std::min(expected, (*kid.value->Field("birthday"))->as_int());
    }
  }
  EXPECT_EQ(got->as_int(), expected);
}

}  // namespace
}  // namespace excess
