// Runtime DOM(S) membership (§3.1): substitutability for tagged tuples,
// per-occurrence collection checks, fixed-length arrays, and OID domain
// legality through references.

#include "objects/conformance.h"

#include <gtest/gtest.h>

#include "objects/database.h"
#include "university/university.h"

namespace excess {
namespace {

ValuePtr I(int64_t v) { return Value::Int(v); }

class ConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog& c = db_.catalog();
    ASSERT_TRUE(c.DefineType("Person",
                             Schema::Tup({{"name", StringSchema()}}))
                    .ok());
    ASSERT_TRUE(c.DefineType("Student",
                             Schema::Tup({{"gpa", FloatSchema()}}),
                             {"Person"})
                    .ok());
    ASSERT_TRUE(c.DefineType("Course", Schema::Tup({{"id", IntSchema()}}))
                    .ok());
  }
  Status Check(const ValuePtr& v, const SchemaPtr& s) {
    return CheckConformance(v, s, db_.catalog(), &db_.store());
  }
  Database db_;
};

TEST_F(ConformanceTest, Scalars) {
  EXPECT_TRUE(Check(I(1), IntSchema()).ok());
  EXPECT_FALSE(Check(I(1), FloatSchema()).ok());
  EXPECT_FALSE(Check(Value::Str("x"), IntSchema()).ok());
  EXPECT_TRUE(Check(Value::Str("x"), AnySchema()).ok());
  EXPECT_TRUE(Check(Value::Date(5), DateSchema()).ok());
  EXPECT_FALSE(Check(Value::Int(5), DateSchema()).ok());
}

TEST_F(ConformanceTest, NullsInhabitEveryDomain) {
  EXPECT_TRUE(Check(Value::Dne(), IntSchema()).ok());
  EXPECT_TRUE(Check(Value::Unk(), Schema::Set(IntSchema())).ok());
  EXPECT_TRUE(Check(Value::Dne(), Schema::Ref("Person")).ok());
}

TEST_F(ConformanceTest, TupleFields) {
  SchemaPtr s = Schema::Tup({{"a", IntSchema()}, {"b", StringSchema()}});
  EXPECT_TRUE(
      Check(Value::Tuple({"a", "b"}, {I(1), Value::Str("x")}), s).ok());
  // Missing field.
  EXPECT_FALSE(Check(Value::Tuple({"a"}, {I(1)}), s).ok());
  // Wrong field type.
  EXPECT_FALSE(Check(Value::Tuple({"a", "b"}, {I(1), I(2)}), s).ok());
  // Extra undeclared field.
  EXPECT_FALSE(Check(Value::Tuple({"a", "b", "c"},
                                  {I(1), Value::Str("x"), I(9)}),
                     s)
                   .ok());
  // Null field value conforms.
  EXPECT_TRUE(
      Check(Value::Tuple({"a", "b"}, {Value::Dne(), Value::Str("x")}), s)
          .ok());
}

TEST_F(ConformanceTest, SubstitutabilityThroughTags) {
  auto person_schema = *db_.catalog().EffectiveSchema("Person");
  ValuePtr person =
      Value::Tuple({"name"}, {Value::Str("ann")}, "Person");
  ValuePtr student = Value::Tuple(
      {"name", "gpa"}, {Value::Str("bob"), Value::Float(3.5)}, "Student");
  ValuePtr course = Value::Tuple({"id"}, {I(1)}, "Course");
  // DOM(Person) contains Person and Student values (extra fields allowed
  // via the subtype's effective schema)...
  EXPECT_TRUE(Check(person, person_schema).ok());
  EXPECT_TRUE(Check(student, person_schema).ok());
  // ...but not unrelated types, even when structurally plausible.
  EXPECT_FALSE(Check(course, person_schema).ok());
  // A Student value missing its own declared field fails against Person's
  // schema too (it is checked against Student's effective schema).
  ValuePtr bad_student =
      Value::Tuple({"name"}, {Value::Str("carl")}, "Student");
  EXPECT_FALSE(Check(bad_student, person_schema).ok());
  // Untagged structural match conforms.
  EXPECT_TRUE(
      Check(Value::Tuple({"name"}, {Value::Str("dot")}), person_schema).ok());
}

TEST_F(ConformanceTest, CollectionsCheckEveryOccurrence) {
  SchemaPtr ints = Schema::Set(IntSchema());
  EXPECT_TRUE(Check(Value::SetOf({I(1), I(2), I(2)}), ints).ok());
  EXPECT_FALSE(Check(Value::SetOf({I(1), Value::Str("x")}), ints).ok());
  EXPECT_FALSE(Check(I(1), ints).ok());
  SchemaPtr arr = Schema::Arr(IntSchema());
  EXPECT_TRUE(Check(Value::ArrayOf({I(1)}), arr).ok());
  EXPECT_FALSE(Check(Value::ArrayOf({Value::Bool(true)}), arr).ok());
}

TEST_F(ConformanceTest, FixedLengthArrays) {
  SchemaPtr fixed = Schema::FixedArr(IntSchema(), 3);
  EXPECT_TRUE(Check(Value::ArrayOf({I(1), I(2), I(3)}), fixed).ok());
  EXPECT_FALSE(Check(Value::ArrayOf({I(1), I(2)}), fixed).ok());
  EXPECT_FALSE(Check(Value::ArrayOf({I(1), I(2), I(3), I(4)}), fixed).ok());
}

TEST_F(ConformanceTest, ReferencesCheckOdomMembership) {
  auto person = db_.store().Create(
      "Person", Value::Tuple({"name"}, {Value::Str("p")}, "Person"));
  auto student = db_.store().Create(
      "Student", Value::Tuple({"name", "gpa"},
                              {Value::Str("s"), Value::Float(3.0)},
                              "Student"));
  auto course =
      db_.store().Create("Course", Value::Tuple({"id"}, {I(1)}, "Course"));
  ASSERT_TRUE(person.ok());
  ASSERT_TRUE(student.ok());
  ASSERT_TRUE(course.ok());
  SchemaPtr ref_person = Schema::Ref("Person");
  // Odom(Person) ⊇ {Person, Student} OIDs (rule 3)...
  EXPECT_TRUE(Check(Value::RefTo(*person), ref_person).ok());
  EXPECT_TRUE(Check(Value::RefTo(*student), ref_person).ok());
  // ...but not Course OIDs (rule 4) nor dangling ones.
  EXPECT_FALSE(Check(Value::RefTo(*course), ref_person).ok());
  EXPECT_FALSE(Check(Value::RefTo({77, 99}), ref_person).ok());
  // The reverse containment does not hold: a Person OID is not in
  // Odom(Student).
  EXPECT_FALSE(Check(Value::RefTo(*person), Schema::Ref("Student")).ok());
  // Non-ref value against a ref schema.
  EXPECT_FALSE(Check(I(5), ref_person).ok());
}

TEST_F(ConformanceTest, DeepNestedStructure) {
  // { (xs: array[1..2] of int4, p: ref Person) }
  SchemaPtr s = Schema::Set(
      Schema::Tup({{"xs", Schema::FixedArr(IntSchema(), 2)},
                   {"p", Schema::Ref("Person")}}));
  auto person = db_.store().Create(
      "Person", Value::Tuple({"name"}, {Value::Str("p")}, "Person"));
  ASSERT_TRUE(person.ok());
  ValuePtr good = Value::SetOf({Value::Tuple(
      {"xs", "p"},
      {Value::ArrayOf({I(1), I(2)}), Value::RefTo(*person)})});
  EXPECT_TRUE(Check(good, s).ok());
  ValuePtr bad = Value::SetOf({Value::Tuple(
      {"xs", "p"}, {Value::ArrayOf({I(1)}), Value::RefTo(*person)})});
  EXPECT_FALSE(Check(bad, s).ok());
}

TEST_F(ConformanceTest, UniversityObjectsConform) {
  // The synthetic Figure 1 database conforms to its declared schemas.
  Database uni;
  UniversityParams p;
  p.num_employees = 15;
  ASSERT_TRUE(BuildUniversity(&uni, p).ok());
  for (const auto& name : uni.NamedObjectNames()) {
    auto obj = uni.GetNamed(name);
    ASSERT_TRUE(obj.ok());
    EXPECT_TRUE(CheckConformance((*obj)->value, (*obj)->schema,
                                 uni.catalog(), &uni.store())
                    .ok())
        << "object " << name;
  }
  // And every stored Employee object conforms to Employee's effective
  // schema.
  auto emp_schema = *uni.catalog().EffectiveSchema("Employee");
  ValuePtr employees = *uni.NamedValue("Employees");
  for (const auto& e : employees->entries()) {
    ValuePtr emp = *uni.store().Deref(e.value->oid());
    EXPECT_TRUE(
        CheckConformance(emp, emp_schema, uni.catalog(), &uni.store()).ok())
        << emp->ToString();
  }
}

}  // namespace
}  // namespace excess
