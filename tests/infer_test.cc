#include "core/infer.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

class InferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    .DefineType("Dept", Schema::Tup({{"name", StringSchema()},
                                                     {"floor", IntSchema()}}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema())).ok());
    ASSERT_TRUE(db_.CreateNamed("Depts",
                                Schema::Set(Schema::Ref("Dept")))
                    .ok());
  }
  Result<SchemaPtr> Infer(const ExprPtr& e, SchemaPtr in = nullptr) {
    TypeInference ti(&db_);
    return ti.Infer(e, std::move(in));
  }
  Database db_;
};

TEST_F(InferTest, LeavesAndVars) {
  EXPECT_TRUE((*Infer(IntLit(1)))->Equals(*IntSchema()));
  EXPECT_TRUE((*Infer(StrLit("x")))->Equals(*StringSchema()));
  EXPECT_TRUE((*Infer(Var("Nums")))->Equals(*Schema::Set(IntSchema())));
  EXPECT_TRUE(Infer(Var("Ghost")).status().IsNotFound());
  EXPECT_TRUE(Infer(Input()).status().IsTypeError());  // no binding
  EXPECT_TRUE((*Infer(Input(), IntSchema()))->Equals(*IntSchema()));
}

TEST_F(InferTest, SchemaOfValueDerivation) {
  ValuePtr v = Value::SetOf({Value::Tuple({"a"}, {Value::Int(1)})});
  SchemaPtr s = SchemaOfValue(v, &db_.store());
  EXPECT_EQ(s->ToString(), "{ (a: int4) }");
  // Heterogeneous sets get an `any` element.
  ValuePtr h = Value::SetOf({Value::Int(1), Value::Str("x")});
  EXPECT_EQ(SchemaOfValue(h, &db_.store())->ToString(), "{ any }");
}

TEST_F(InferTest, SetOperatorsNeedSets) {
  EXPECT_TRUE((*Infer(SetApply(Arith("+", Input(), IntLit(1)), Var("Nums"))))
                  ->Equals(*Schema::Set(IntSchema())));
  EXPECT_TRUE(Infer(SetApply(Input(), IntLit(1))).status().IsTypeError());
  EXPECT_TRUE(Infer(DupElim(IntLit(1))).status().IsTypeError());
  EXPECT_TRUE(
      Infer(AddUnion(Var("Nums"), IntLit(3))).status().IsTypeError());
}

TEST_F(InferTest, AddUnionRequiresCompatibleElements) {
  ASSERT_TRUE(db_.CreateNamed("Strs", Schema::Set(StringSchema())).ok());
  EXPECT_TRUE(
      Infer(AddUnion(Var("Nums"), Var("Strs"))).status().IsTypeError());
  EXPECT_TRUE((*Infer(AddUnion(Var("Nums"), Var("Nums"))))
                  ->Equals(*Schema::Set(IntSchema())));
}

TEST_F(InferTest, GroupAndCollapse) {
  EXPECT_EQ((*Infer(Group(Input(), Var("Nums"))))->ToString(),
            "{ { int4 } }");
  EXPECT_EQ((*Infer(SetCollapse(Group(Input(), Var("Nums")))))->ToString(),
            "{ int4 }");
  EXPECT_TRUE(Infer(SetCollapse(Var("Nums"))).status().IsTypeError());
}

TEST_F(InferTest, CrossMakesPairs) {
  EXPECT_EQ((*Infer(Cross(Var("Nums"), Var("Nums"))))->ToString(),
            "{ (_1: int4, _2: int4) }");
}

TEST_F(InferTest, TupleOperators) {
  SchemaPtr t = Schema::Tup({{"a", IntSchema()}, {"b", StringSchema()}});
  EXPECT_TRUE((*Infer(TupExtract("b", Input()), t))->Equals(*StringSchema()));
  EXPECT_TRUE(Infer(TupExtract("z", Input()), t).status().IsNotFound());
  EXPECT_EQ((*Infer(Project({"b"}, Input()), t))->ToString(), "(b: string)");
  EXPECT_EQ((*Infer(TupCat(Input(), TupMake(IntLit(1))), t))->ToString(),
            "(a: int4, b: string, _1: int4)");
  EXPECT_TRUE(Infer(TupExtract("a", IntLit(1))).status().IsTypeError());
}

TEST_F(InferTest, ArrayOperators) {
  ASSERT_TRUE(
      db_.CreateNamed("Arr", Schema::FixedArr(IntSchema(), 10)).ok());
  EXPECT_TRUE((*Infer(ArrExtract(5, Var("Arr"))))->Equals(*IntSchema()));
  EXPECT_EQ((*Infer(SubArr(1, 3, Var("Arr"))))->ToString(), "array of int4");
  EXPECT_EQ(
      (*Infer(ArrApply(Arith("*", Input(), IntLit(2)), Var("Arr"))))
          ->ToString(),
      "array of int4");
  // ARR_CAT of two fixed arrays has a fixed combined size.
  auto cat = Infer(ArrCat(Var("Arr"), Var("Arr")));
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->fixed_size().has_value());
  EXPECT_EQ(*(*cat)->fixed_size(), 20);
  EXPECT_TRUE(Infer(ArrExtract(1, Var("Nums"))).status().IsTypeError());
}

TEST_F(InferTest, RefAndDeref) {
  // DEREF of ref Dept resolves through the catalog.
  auto elem = Infer(SetApply(Deref(Input()), Var("Depts")));
  ASSERT_TRUE(elem.ok());
  EXPECT_EQ((*elem)->ToString(), "{ Dept }");
  // REF of a named-typed expression records the target.
  auto r = Infer(RefOp(Deref(Input()), ""), Schema::Ref("Dept"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ToString(), "ref Dept");
  EXPECT_TRUE(Infer(Deref(IntLit(1))).status().IsTypeError());
  EXPECT_TRUE(
      Infer(Deref(Input()), Schema::Ref("Ghost")).status().IsTypeError());
}

TEST_F(InferTest, CompChecksPredicates) {
  SchemaPtr t = Schema::Tup({{"floor", IntSchema()}});
  EXPECT_TRUE((*Infer(Comp(Eq(TupExtract("floor", Input()), IntLit(2)),
                           Input()),
                      t))
                  ->Equals(*t));
  // Ordering comparison over a tuple is rejected statically.
  EXPECT_TRUE(Infer(Comp(Lt(Input(), IntLit(2)), Input()), t)
                  .status()
                  .IsTypeError());
  // Membership requires a multiset rhs.
  EXPECT_TRUE(Infer(Comp(In(Input(), IntLit(1)), IntLit(2)))
                  .status()
                  .IsTypeError());
}

TEST_F(InferTest, ArithAndAgg) {
  EXPECT_TRUE((*Infer(Arith("+", IntLit(1), IntLit(2))))->Equals(*IntSchema()));
  EXPECT_TRUE(
      (*Infer(Arith("+", IntLit(1), FloatLit(2))))->Equals(*FloatSchema()));
  EXPECT_TRUE(
      Infer(Arith("*", StrLit("a"), IntLit(2))).status().IsTypeError());
  EXPECT_TRUE((*Infer(Agg("count", Var("Nums"))))->Equals(*IntSchema()));
  EXPECT_TRUE((*Infer(Agg("avg", Var("Nums"))))->Equals(*FloatSchema()));
  EXPECT_TRUE((*Infer(Agg("min", Var("Nums"))))->Equals(*IntSchema()));
  EXPECT_TRUE(Infer(Agg("median", Var("Nums"))).status().IsNotFound());
}

TEST_F(InferTest, TypedSetApplySeesExactSchema) {
  ASSERT_TRUE(db_.catalog()
                  .DefineType("Sub", Schema::Tup({{"extra", IntSchema()}}))
                  .ok());
  ASSERT_TRUE(db_.CreateNamed(
                    "Mixed",
                    Schema::Set(*db_.catalog().EffectiveSchema("Dept")))
                  .ok());
  // Inside SET_APPLY<Sub>, INPUT has Sub's effective schema.
  auto r = Infer(SetApply(TupExtract("extra", Input()), Var("Mixed"), "Sub"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ToString(), "{ int4 }");
}

}  // namespace
}  // namespace excess
