// Doc-freshness checks: the operator and rule references in docs/ must
// cover everything the code registers. Adding an OpKind or a rewrite rule
// without documenting it fails here (ctest label `docs`), so the reference
// pages cannot silently rot.

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/eval.h"
#include "core/expr.h"
#include "core/rules.h"
#include "gtest/gtest.h"

namespace excess {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const std::string& OperatorsDoc() {
  static const std::string* doc =
      new std::string(ReadFileOrDie(std::string(EXCESS_DOCS_DIR) +
                                    "/OPERATORS.md"));
  return *doc;
}

const std::string& RulesDoc() {
  static const std::string* doc =
      new std::string(ReadFileOrDie(std::string(EXCESS_DOCS_DIR) +
                                    "/RULES.md"));
  return *doc;
}

const std::string& ObservabilityDoc() {
  static const std::string* doc =
      new std::string(ReadFileOrDie(std::string(EXCESS_DOCS_DIR) +
                                    "/OBSERVABILITY.md"));
  return *doc;
}

const std::string& IndexesDoc() {
  static const std::string* doc =
      new std::string(ReadFileOrDie(std::string(EXCESS_DOCS_DIR) +
                                    "/INDEXES.md"));
  return *doc;
}

TEST(DocsFreshness, EveryOpKindDocumented) {
  for (int k = 0; k < kNumOpKinds; ++k) {
    const char* name = OpKindToString(static_cast<OpKind>(k));
    ASSERT_STRNE(name, "?") << "OpKindToString missing case for kind " << k;
    // Operators appear as `NAME` code spans in the reference tables; the
    // backticks keep short names like PI or SET from matching prose.
    std::string needle = std::string("`") + name + "`";
    EXPECT_NE(OperatorsDoc().find(needle), std::string::npos)
        << "operator " << name
        << " is not documented in docs/OPERATORS.md (add a `" << name
        << "` row; see the freshness note at the top of the file)";
  }
}

TEST(DocsFreshness, EveryRuleDocumented) {
  const RuleSet all = RuleSet::All();
  ASSERT_FALSE(all.rules().empty());
  std::set<std::string> seen;
  for (const auto& rule : all.rules()) {
    EXPECT_TRUE(seen.insert(rule.name).second)
        << "duplicate rule name " << rule.name;
    std::string needle = std::string("`") + rule.name + "`";
    EXPECT_NE(RulesDoc().find(needle), std::string::npos)
        << "rule " << rule.name
        << " is not documented in docs/RULES.md (add a `" << rule.name
        << "` row with its paper id and side conditions)";
  }
}

TEST(DocsFreshness, RuleDocsMatchPaperIdsAndModes) {
  // Stronger than name presence: the documented paper id must match the
  // registered one. The doc row format is
  //   | `name` | <paper-id> | directed|exploratory | ...
  const RuleSet all = RuleSet::All();
  for (const auto& rule : all.rules()) {
    std::string row_start = std::string("| `") + rule.name + "` | " +
                            std::to_string(rule.paper_id) + " | " +
                            (rule.directed ? "directed" : "exploratory");
    EXPECT_NE(RulesDoc().find(row_start), std::string::npos)
        << "docs/RULES.md row for " << rule.name
        << " does not record paper id " << rule.paper_id << " and mode "
        << (rule.directed ? "directed" : "exploratory")
        << " (expected a row starting with: " << row_start << ")";
  }
}

TEST(DocsFreshness, MetricNamesDocumented) {
  // The stable metric names emitted by core (docs/OBSERVABILITY.md table).
  for (const char* name :
       {"rules.fired.", "planner.search_expanded", "planner.plans_considered",
        "hashjoin.builds", "hashjoin.nested_loop", "hashjoin.build_entries",
        "hashjoin.probe_entries", "hashjoin.pairs_tested",
        "hashjoin.chain_length", "index.probes", "index.probe_candidates",
        "index.probe_fallbacks", "index.bucket_size", "index.joins",
        "index.join_candidates", "index.join_fallbacks",
        "parallel.partitions", "parallel.batches",
        "parallel.items", "governor.trips.memory",
        "governor.trips.occurrences", "governor.trips.deadline",
        "governor.trips.cancelled", "storage.wal.appends",
        "storage.wal.fsync_ns", "storage.snapshot.writes",
        "storage.recovery.replayed", "storage.recovery.torn_tail",
        "storage.group_commit.batches", "storage.group_commit.statements",
        "txn.begin", "txn.commit", "txn.rollback",
        "server.connections.accepted", "server.connections.closed",
        "server.requests.read", "server.requests.write",
        "server.requests.executed", "server.requests.shed",
        "server.requests.malformed", "server.cancelled.dead_client",
        "server.cancelled.deadline", "server.jobs.abandoned",
        "server.epoch.published", "server.epoch.refreshes", "server.drains",
        "server.queue.depth", "server.exec_us",
        "server.requests.version_mismatch", "server.txn.leases",
        "server.txn.reaped", "server.txn.resolved_by_token",
        "server.retry.hints", "server.retry.hint_ms",
        "client.reconnect.attempts", "client.reconnect.failures"}) {
    EXPECT_NE(ObservabilityDoc().find(name), std::string::npos)
        << "metric " << name << " is not documented in docs/OBSERVABILITY.md";
  }
}

TEST(DocsFreshness, EnvKnobsDocumented) {
  for (const char* knob :
       {"EXCESS_THREADS", "EXCESS_DEADLINE_MS", "EXCESS_MEM_LIMIT_MB",
        "EXCESS_SWEEP_SEEDS", "EXCESS_METRICS_PATH", "EXCESS_DB_PATH",
        "EXCESS_WAL_FSYNC", "EXCESS_GROUP_COMMIT", "EXCESS_INDEX_LOWERING",
        "EXCESS_SERVER_SOCKET",
        "EXCESS_SERVER_PORT", "EXCESS_SERVER_WORKERS", "EXCESS_SERVER_QUEUE",
        "EXCESS_SERVER_GRACE_MS", "EXCESS_TXN_LEASE_MS"}) {
    EXPECT_NE(ObservabilityDoc().find(knob), std::string::npos)
        << "env knob " << knob
        << " is not documented in docs/OBSERVABILITY.md";
  }
}

TEST(DocsFreshness, LoweringRulesDocumented) {
  // The index-aware lowering rules live in core/physical.cc, outside
  // RuleSet::All(), so EveryRuleDocumented cannot see them; pin their
  // rows explicitly.
  for (const char* rule : {"lower-index-probe", "lower-index-join"}) {
    std::string needle = std::string("`") + rule + "`";
    EXPECT_NE(RulesDoc().find(needle), std::string::npos)
        << "lowering rule " << rule << " is not documented in docs/RULES.md";
    EXPECT_NE(IndexesDoc().find(needle), std::string::npos)
        << "lowering rule " << rule << " is not covered in docs/INDEXES.md";
  }
}

TEST(DocsFreshness, IndexReferenceCoversTheSurface) {
  // docs/INDEXES.md must keep naming the pieces it claims to document:
  // the DDL keywords, both physical operators, both snapshot magics, the
  // planner knob, and the probe metrics.
  for (const char* needle :
       {"create index", "drop index", "using hash", "using ordered",
        "`IDX_PROBE`", "`IDX_JOIN`", "EXDB0002", "EXDB0001",
        "EXCESS_INDEX_LOWERING", "index.probes", "index.probe_fallbacks",
        "index.bucket_size", "index.joins"}) {
    EXPECT_NE(IndexesDoc().find(needle), std::string::npos)
        << "docs/INDEXES.md no longer mentions \"" << needle << "\"";
  }
}

}  // namespace
}  // namespace excess
