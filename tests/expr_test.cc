// Mechanics of the algebra IR: construction invariants, deep equality and
// hashing, structural rebuilders, rendering, and node counting — the
// substrate the rewriter and planner memoization depend on.

#include "core/expr.h"

#include <gtest/gtest.h>

#include "core/builder.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

TEST(ExprTest, EqualityIsDeepAndParameterSensitive) {
  ExprPtr a = SetApply(Arith("+", Input(), IntLit(1)), Var("R"));
  ExprPtr b = SetApply(Arith("+", Input(), IntLit(1)), Var("R"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  // Different literal.
  EXPECT_FALSE(
      a->Equals(*SetApply(Arith("+", Input(), IntLit(2)), Var("R"))));
  // Different object name.
  EXPECT_FALSE(
      a->Equals(*SetApply(Arith("+", Input(), IntLit(1)), Var("Q"))));
  // Different type filter.
  EXPECT_FALSE(a->Equals(
      *SetApply(Arith("+", Input(), IntLit(1)), Var("R"), "Person")));
  // Different arithmetic operator (the name field).
  EXPECT_FALSE(
      a->Equals(*SetApply(Arith("-", Input(), IntLit(1)), Var("R"))));
}

TEST(ExprTest, PredicateEqualityParticipates) {
  ExprPtr a = Comp(Eq(Input(), IntLit(1)), Var("R"));
  ExprPtr b = Comp(Eq(Input(), IntLit(1)), Var("R"));
  ExprPtr c = Comp(Ne(Input(), IntLit(1)), Var("R"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_NE(a->Hash(), c->Hash());
}

TEST(ExprTest, ArrayBoundsParticipate) {
  EXPECT_FALSE(ArrExtract(1, Var("A"))->Equals(*ArrExtract(2, Var("A"))));
  EXPECT_FALSE(ArrExtract(1, Var("A"))->Equals(*ArrExtractLast(Var("A"))));
  EXPECT_FALSE(
      SubArr(1, 2, Var("A"))->Equals(*SubArr(1, 3, Var("A"))));
  EXPECT_FALSE(SubArr(1, 2, Var("A"))
                   ->Equals(*SubArr(1, 2, Var("A"), false, true)));
}

TEST(ExprTest, WithChildAndWithSubRebuild) {
  ExprPtr e = SetApply(Arith("+", Input(), IntLit(1)), Var("R"));
  ExprPtr swapped = e->WithChild(0, Var("Q"));
  EXPECT_EQ(swapped->child(0)->name(), "Q");
  EXPECT_TRUE(swapped->sub()->Equals(*e->sub()));  // subscript preserved
  ExprPtr resubbed = e->WithSub(Input());
  EXPECT_EQ(resubbed->sub()->kind(), OpKind::kInput);
  EXPECT_EQ(resubbed->child(0)->name(), "R");
  // Originals untouched (immutability).
  EXPECT_EQ(e->child(0)->name(), "R");
  EXPECT_EQ(e->sub()->kind(), OpKind::kArith);
}

TEST(ExprTest, NodeCountIncludesSubscriptsAndPredicates) {
  EXPECT_EQ(Input()->NodeCount(), 1);
  EXPECT_EQ(Arith("+", Input(), IntLit(1))->NodeCount(), 3);
  // SET_APPLY(1) + Var(1) + subscript Arith(3).
  EXPECT_EQ(SetApply(Arith("+", Input(), IntLit(1)), Var("R"))->NodeCount(),
            5);
  // COMP(1) + Var(1) + atom(1) + two atom operand nodes.
  EXPECT_EQ(Comp(Eq(Input(), IntLit(1)), Var("R"))->NodeCount(), 5);
}

TEST(ExprTest, ToStringRendersOperatorsRecognizably) {
  EXPECT_EQ(Input()->ToString(), "INPUT");
  EXPECT_EQ(Var("Employees")->ToString(), "Employees");
  EXPECT_EQ(IntLit(7)->ToString(), "7");
  EXPECT_EQ(TupExtract("name", Input())->ToString(),
            "TUP_EXTRACT<name>(INPUT)");
  std::string s =
      SetApply(Project({"a", "b"}, Input()), Var("R"))->ToString();
  EXPECT_NE(s.find("SET_APPLY"), std::string::npos);
  EXPECT_NE(s.find("PI<a,b>"), std::string::npos);
  EXPECT_EQ(SubArr(2, 3, Var("A"))->ToString(), "SUBARR<2,3>(A)");
  EXPECT_EQ(ArrExtractLast(Var("A"))->ToString(), "ARR_EXTRACT<last>(A)");
  EXPECT_EQ(Param(1)->ToString(), "$1");
}

TEST(ExprTest, TreeStringIndentsChildren) {
  std::string t = DupElim(Cross(Var("A"), Var("B")))->ToTreeString();
  EXPECT_NE(t.find("DE\n"), std::string::npos);
  EXPECT_NE(t.find("  CROSS\n"), std::string::npos);
  EXPECT_NE(t.find("    A\n"), std::string::npos);
}

TEST(PredicateTest, ToStringAndStructure) {
  PredicatePtr p = Predicate::And(
      Eq(Input(), IntLit(1)),
      Predicate::Not(Lt(Input(), IntLit(0))));
  EXPECT_EQ(p->ToString(), "(INPUT = 1 and not (INPUT < 0))");
  EXPECT_EQ(Predicate::True()->ToString(), "true");
  PredicatePtr q = Predicate::Or(Gt(Input(), IntLit(2)),
                                 In(Input(), Var("S")));
  EXPECT_EQ(q->ToString(), "(INPUT > 2 or INPUT in S)");
}

TEST(ExprTest, MethodCallCarriesReceiverAndArgs) {
  ExprPtr call = MethodCall("f", Var("X"), {IntLit(1), StrLit("s")});
  EXPECT_EQ(call->kind(), OpKind::kMethodCall);
  EXPECT_EQ(call->num_children(), 3u);
  EXPECT_EQ(call->name(), "f");
  EXPECT_FALSE(call->Equals(*MethodCall("g", Var("X"), {IntLit(1),
                                                        StrLit("s")})));
}

TEST(ExprTest, DerivedOperatorsExpandToPrimitives) {
  // ∪ = (A − B) ⊎ B; ∩ = A − (A − B); σ = SET_APPLY of COMP.
  ExprPtr u = Union(Var("A"), Var("B"));
  EXPECT_EQ(u->kind(), OpKind::kAddUnion);
  EXPECT_EQ(u->child(0)->kind(), OpKind::kDiff);
  ExprPtr i = Intersect(Var("A"), Var("B"));
  EXPECT_EQ(i->kind(), OpKind::kDiff);
  EXPECT_EQ(i->child(1)->kind(), OpKind::kDiff);
  ExprPtr sel = Select(Predicate::True(), Var("A"));
  EXPECT_EQ(sel->kind(), OpKind::kSetApply);
  EXPECT_EQ(sel->sub()->kind(), OpKind::kComp);
  ExprPtr rj = RelJoin(Predicate::True(), Var("A"), Var("B"));
  EXPECT_EQ(rj->kind(), OpKind::kSetApply);
}

TEST(ExprTest, PathBuilderChainsExtractions) {
  ExprPtr p = Path({"a", "b", "c"}, Input());
  EXPECT_EQ(p->ToString(),
            "TUP_EXTRACT<c>(TUP_EXTRACT<b>(TUP_EXTRACT<a>(INPUT)))");
}

}  // namespace
}  // namespace excess
