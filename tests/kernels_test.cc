#include "core/kernels.h"

#include <gtest/gtest.h>

namespace excess {
namespace {

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr S(std::vector<ValuePtr> v) { return Value::SetOf(v); }
ValuePtr A(std::vector<ValuePtr> v) { return Value::ArrayOf(std::move(v)); }

TEST(MultisetKernels, AddUnionSumsCardinalities) {
  ValuePtr r = *kernels::AddUnion(S({I(1), I(1), I(2)}), S({I(1), I(3)}));
  EXPECT_EQ(r->CountOf(I(1)), 3);
  EXPECT_EQ(r->CountOf(I(2)), 1);
  EXPECT_EQ(r->CountOf(I(3)), 1);
}

TEST(MultisetKernels, DiffSubtractsWithFloorZero) {
  ValuePtr r = *kernels::Diff(S({I(1), I(1), I(2)}), S({I(1), I(2), I(2)}));
  EXPECT_EQ(r->CountOf(I(1)), 1);
  EXPECT_EQ(r->CountOf(I(2)), 0);
  EXPECT_EQ(r->TotalCount(), 1);
}

TEST(MultisetKernels, CrossMultipliesCardinalitiesAndPairs) {
  ValuePtr r = *kernels::Cross(S({I(1), I(1)}), S({I(5), I(6)}));
  EXPECT_EQ(r->TotalCount(), 4);
  EXPECT_EQ(r->CountOf(Value::TupleOf({I(1), I(5)})), 2);
  // Empty side yields the empty product.
  EXPECT_EQ((*kernels::Cross(S({}), S({I(1)})))->TotalCount(), 0);
}

TEST(MultisetKernels, DupElim) {
  ValuePtr r = *kernels::DupElim(S({I(1), I(1), I(2)}));
  EXPECT_EQ(r->TotalCount(), 2);
  EXPECT_EQ(r->CountOf(I(1)), 1);
}

TEST(MultisetKernels, SetCollapseWeightsOuterCardinality) {
  // {{1,2} x2, {2}} collapses to {1 x2, 2 x3}.
  ValuePtr inner1 = S({I(1), I(2)});
  ValuePtr r = *kernels::SetCollapse(
      Value::SetOfCounted({{inner1, 2}, {S({I(2)}), 1}}));
  EXPECT_EQ(r->CountOf(I(1)), 2);
  EXPECT_EQ(r->CountOf(I(2)), 3);
}

TEST(MultisetKernels, SetCollapseRejectsNonSets) {
  EXPECT_TRUE(kernels::SetCollapse(S({I(1)})).status().IsTypeError());
}

TEST(MultisetKernels, DerivedUnionViaDefinition) {
  // A ∪ B = (A − B) ⊎ B takes the max cardinality (Appendix §1).
  ValuePtr a = S({I(1), I(1), I(2)});
  ValuePtr b = S({I(1), I(3)});
  ValuePtr direct = *kernels::MaxUnion(a, b);
  ValuePtr derived = *kernels::AddUnion(*kernels::Diff(a, b), b);
  EXPECT_TRUE(direct->Equals(*derived));
  EXPECT_EQ(direct->CountOf(I(1)), 2);
}

TEST(MultisetKernels, DerivedIntersectViaDefinition) {
  // A ∩ B = A − (A − B) takes the min cardinality.
  ValuePtr a = S({I(1), I(1), I(2)});
  ValuePtr b = S({I(1), I(2), I(2), I(4)});
  ValuePtr direct = *kernels::MinIntersect(a, b);
  ValuePtr derived = *kernels::Diff(a, *kernels::Diff(a, b));
  EXPECT_TRUE(direct->Equals(*derived));
  EXPECT_EQ(direct->CountOf(I(1)), 1);
  EXPECT_EQ(direct->CountOf(I(2)), 1);
  EXPECT_EQ(direct->CountOf(I(4)), 0);
}

TEST(MultisetKernels, SortErrors) {
  EXPECT_TRUE(kernels::AddUnion(I(1), S({})).status().IsTypeError());
  EXPECT_TRUE(kernels::Diff(S({}), A({})).status().IsTypeError());
  EXPECT_TRUE(kernels::DupElim(A({})).status().IsTypeError());
}

TEST(TupleKernels, TupCatConcatenates) {
  ValuePtr r = *kernels::TupCat(Value::Tuple({"a"}, {I(1)}),
                                Value::Tuple({"b"}, {I(2)}));
  EXPECT_EQ(r->num_fields(), 2u);
  EXPECT_EQ((*r->Field("a"))->as_int(), 1);
  EXPECT_EQ((*r->Field("b"))->as_int(), 2);
  EXPECT_TRUE(kernels::TupCat(I(1), Value::Tuple({}, {})).status().IsTypeError());
}

TEST(TupleKernels, ProjectKeepsListedFieldsInOrder) {
  ValuePtr t = Value::Tuple({"a", "b", "c"}, {I(1), I(2), I(3)});
  ValuePtr r = *kernels::Project({"c", "a"}, t);
  EXPECT_EQ(r->field_names(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ((*r->FieldAt(0))->as_int(), 3);
  EXPECT_TRUE(kernels::Project({"zz"}, t).status().IsNotFound());
}

TEST(ArrayKernels, ArrCatPreservesOrder) {
  ValuePtr r = *kernels::ArrCat(A({I(1), I(2)}), A({I(3)}));
  EXPECT_EQ(r->ArrayLength(), 3);
  EXPECT_EQ(r->elems()[2]->as_int(), 3);
}

TEST(ArrayKernels, ArrExtractOneBasedWithDneOutOfRange) {
  ValuePtr a = A({I(10), I(20)});
  EXPECT_EQ((*kernels::ArrExtract(1, a))->as_int(), 10);
  EXPECT_EQ((*kernels::ArrExtract(2, a))->as_int(), 20);
  EXPECT_TRUE((*kernels::ArrExtract(0, a))->is_dne());
  EXPECT_TRUE((*kernels::ArrExtract(3, a))->is_dne());
}

TEST(ArrayKernels, SubArrClamps) {
  ValuePtr a = A({I(1), I(2), I(3), I(4)});
  EXPECT_TRUE((*kernels::SubArr(2, 3, a))->Equals(*A({I(2), I(3)})));
  EXPECT_TRUE((*kernels::SubArr(-5, 2, a))->Equals(*A({I(1), I(2)})));
  EXPECT_TRUE((*kernels::SubArr(3, 99, a))->Equals(*A({I(3), I(4)})));
  EXPECT_EQ((*kernels::SubArr(3, 2, a))->ArrayLength(), 0);
}

TEST(ArrayKernels, ArrCollapse) {
  ValuePtr r = *kernels::ArrCollapse(A({A({I(1), I(2)}), A({}), A({I(3)})}));
  EXPECT_TRUE(r->Equals(*A({I(1), I(2), I(3)})));
  EXPECT_TRUE(kernels::ArrCollapse(A({I(1)})).status().IsTypeError());
}

TEST(ArrayKernels, ArrDiffRemovesFirstOccurrences) {
  ValuePtr r = *kernels::ArrDiff(A({I(1), I(2), I(1), I(3)}), A({I(1), I(3)}));
  EXPECT_TRUE(r->Equals(*A({I(2), I(1)})));
}

TEST(ArrayKernels, ArrDupElimKeepsFirst) {
  ValuePtr r = *kernels::ArrDupElim(A({I(2), I(1), I(2), I(1)}));
  EXPECT_TRUE(r->Equals(*A({I(2), I(1)})));
}

TEST(ArrayKernels, ArrCrossIsLexicographic) {
  ValuePtr r = *kernels::ArrCross(A({I(1), I(2)}), A({I(8), I(9)}));
  ASSERT_EQ(r->ArrayLength(), 4);
  EXPECT_TRUE(r->elems()[0]->Equals(*Value::TupleOf({I(1), I(8)})));
  EXPECT_TRUE(r->elems()[1]->Equals(*Value::TupleOf({I(1), I(9)})));
  EXPECT_TRUE(r->elems()[3]->Equals(*Value::TupleOf({I(2), I(9)})));
}

TEST(Aggregates, CountSumAvgMinMax) {
  ValuePtr s = S({I(4), I(4), I(10)});
  EXPECT_EQ((*kernels::Aggregate("count", s))->as_int(), 3);
  EXPECT_EQ((*kernels::Aggregate("sum", s))->as_int(), 18);
  EXPECT_DOUBLE_EQ((*kernels::Aggregate("avg", s))->as_float(), 6.0);
  EXPECT_EQ((*kernels::Aggregate("min", s))->as_int(), 4);
  EXPECT_EQ((*kernels::Aggregate("max", s))->as_int(), 10);
}

TEST(Aggregates, EmptyAndErrors) {
  EXPECT_EQ((*kernels::Aggregate("count", S({})))->as_int(), 0);
  EXPECT_TRUE((*kernels::Aggregate("min", S({})))->is_dne());
  EXPECT_TRUE((*kernels::Aggregate("sum", S({})))->is_dne());
  EXPECT_TRUE(kernels::Aggregate("median", S({I(1)})).status().IsNotFound());
  EXPECT_TRUE(
      kernels::Aggregate("sum", S({Value::Str("x")})).status().IsTypeError());
}

TEST(Aggregates, MixedNumericSumIsFloat) {
  ValuePtr s = S({I(1), Value::Float(0.5)});
  ValuePtr r = *kernels::Aggregate("sum", s);
  EXPECT_EQ(r->kind(), ValueKind::kFloat);
  EXPECT_DOUBLE_EQ(r->as_float(), 1.5);
}

TEST(Aggregates, MinOverStrings) {
  ValuePtr s = S({Value::Str("pear"), Value::Str("apple")});
  EXPECT_EQ((*kernels::Aggregate("min", s))->as_string(), "apple");
}

}  // namespace
}  // namespace excess
