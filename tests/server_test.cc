// The concurrent session server (src/server/): wire-protocol codecs,
// request/response round trips over real unix and TCP sockets, statement
// routing and rejection, admission-control shedding with retry-after,
// deadline propagation into the governor, dead-client cancellation, the
// abandon backstop for stalled workers, graceful drain, and a
// deterministic client-fault sweep with a reopen oracle against the
// committed statements.

#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/status.h"

namespace excess {
namespace server {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

bool WaitFor(const std::function<bool()>& pred, std::chrono::milliseconds max) {
  auto deadline = std::chrono::steady_clock::now() + max;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// Hooks that stall selected jobs (by global dequeue index) inside a
/// worker until released — the deterministic seam for exercising full
/// queues, abandoned jobs, and dead-client cancellation.
class StallHooks : public ServerHooks {
 public:
  void OnJobStart(uint64_t idx) override {
    std::unique_lock<std::mutex> l(mu_);
    if (stall_.count(idx) == 0) return;
    started_.insert(idx);
    cv_.notify_all();
    cv_.wait(l, [&] { return released_; });
  }
  void StallJob(uint64_t idx) {
    std::lock_guard<std::mutex> l(mu_);
    stall_.insert(idx);
  }
  bool WaitStarted(uint64_t idx, std::chrono::milliseconds max) {
    std::unique_lock<std::mutex> l(mu_);
    return cv_.wait_for(l, max, [&] { return started_.count(idx) > 0; });
  }
  void ReleaseAll() {
    std::lock_guard<std::mutex> l(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<uint64_t> stall_;
  std::set<uint64_t> started_;
  bool released_ = false;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    // Unix socket paths must fit sockaddr_un; keep them short and unique.
    sock_ = "/tmp/exsrv_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock";
    dir_ = fs::temp_directory_path() /
           ("excess_server_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("EXCESS_DB_PATH");
    ::setenv("EXCESS_WAL_FSYNC", "0", 1);
    obs::MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    fs::remove_all(dir_);
    ::unlink(sock_.c_str());
    ::unsetenv("EXCESS_WAL_FSYNC");
    ::unsetenv("EXCESS_DB_PATH");
  }

  ServerOptions Opts() {
    ServerOptions o;
    o.unix_path = sock_;
    o.workers = 2;
    return o;
  }

  std::string sock_;
  fs::path dir_;
};

// --- wire codecs (no sockets) -----------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = 1234;
  req.max_bytes = (1ull << 33) + 7;
  req.max_occurrences = 99;
  req.statement = "retrieve (x) from x in Nums";
  auto back = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->opcode, req.opcode);
  EXPECT_EQ(back->deadline_ms, req.deadline_ms);
  EXPECT_EQ(back->max_bytes, req.max_bytes);
  EXPECT_EQ(back->max_occurrences, req.max_occurrences);
  EXPECT_EQ(back->statement, req.statement);
}

TEST(WireTest, ResponseRoundTrip) {
  Response resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.epoch = 42;
  resp.retry_after_ms = 250;
  resp.message = "admission queue full";
  resp.result = "payload";
  auto back = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code, resp.code);
  EXPECT_EQ(back->epoch, resp.epoch);
  EXPECT_EQ(back->retry_after_ms, resp.retry_after_ms);
  EXPECT_EQ(back->message, resp.message);
  EXPECT_EQ(back->result, resp.result);
}

TEST(WireTest, DecodersAreStrict) {
  // Unknown opcode.
  Request req;
  std::string enc = EncodeRequest(req);
  enc[0] = 77;
  EXPECT_FALSE(DecodeRequest(enc).ok());
  // Truncated payload.
  std::string good = EncodeRequest(req);
  EXPECT_FALSE(DecodeRequest(std::string_view(good).substr(0, 8)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeRequest(good + "x").ok());
  // Unknown status code.
  Response resp;
  std::string renc = EncodeResponse(resp);
  renc[0] = static_cast<char>(200);
  EXPECT_FALSE(DecodeResponse(renc).ok());
  EXPECT_FALSE(DecodeResponse(EncodeResponse(resp) + "x").ok());
}

// --- round trips and epochs -------------------------------------------------

TEST_F(ServerTest, PingStatementsAndEpochs) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());

  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  EXPECT_GE(ping->epoch, 1u);

  uint64_t last_epoch = ping->epoch;
  auto create = client->Execute("create Nums: { int4 }");
  ASSERT_TRUE(create.ok());
  ASSERT_EQ(create->code, StatusCode::kOk) << create->message;
  EXPECT_GT(create->epoch, last_epoch);  // a write publishes a new epoch
  last_epoch = create->epoch;

  auto append = client->Execute("append all {1, 2, 3} to Nums");
  ASSERT_TRUE(append.ok());
  ASSERT_EQ(append->code, StatusCode::kOk) << append->message;
  EXPECT_GT(append->epoch, last_epoch);
  last_epoch = append->epoch;

  // Read-your-writes on one connection, and epochs never go backwards.
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->code, StatusCode::kOk) << count->message;
  EXPECT_EQ(count->result, "3");
  EXPECT_GE(count->epoch, last_epoch);

  // Errors carry the statement's own status, not a transport failure.
  auto bad = client->Execute("retrieve ( count(NoSuchSet) )");
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, ExecuteLocalSeedsBeforeClients) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.ExecuteLocal("append all {5, 6} to Nums").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->code, StatusCode::kOk) << count->message;
  EXPECT_EQ(count->result, "2");
  server.Shutdown();
}

TEST_F(ServerTest, SessionStatementsAreRejected) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  // `open` rebinds the process to another file: embedded-session only.
  // Transactions, by contrast, are wire features now (lease on the writer)
  // — and ExecuteLocal is where THEY are rejected, since a local `begin`
  // would have no connection lease to scope or reap it.
  auto r = client->Execute("open \"nope.db\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kUnsupported);
  for (const char* stmt : {"begin", "commit", "rollback"}) {
    auto local = server.ExecuteLocal(stmt);
    ASSERT_FALSE(local.ok()) << stmt;
    EXPECT_EQ(local.status().code(), StatusCode::kUnsupported) << stmt;
  }
  // The connection survives rejected statements.
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, ParseErrorKeepsConnection) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto r = client->Execute("retrieve retrieve retrieve");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->code, StatusCode::kOk);
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, MalformedPayloadClosesConnectionServerSurvives) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  // A well-framed but undecodable payload: answered with kInvalid, then
  // the connection is dropped (framing discipline is broken).
  ASSERT_TRUE(WriteFrame(client->fd(), "\xFFgarbage", 1'000).ok());
  auto resp_payload = ReadFrame(client->fd(), 5'000);
  ASSERT_TRUE(resp_payload.ok());
  auto resp = DecodeResponse(*resp_payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kInvalid);
  auto next = ReadFrame(client->fd(), 5'000);
  EXPECT_FALSE(next.ok());  // server closed the connection
  EXPECT_GE(CounterValue("server.requests.malformed"), 1);

  // An oversized length prefix drops the connection outright.
  auto client2 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client2.ok());
  std::string huge_hdr = {'\xFF', '\xFF', '\xFF', '\x7F'};
  ASSERT_EQ(::send(client2->fd(), huge_hdr.data(), 4, MSG_NOSIGNAL), 4);
  auto dropped = ReadFrame(client2->fd(), 5'000);
  EXPECT_FALSE(dropped.ok());

  // The server keeps serving fresh connections.
  auto client3 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client3.ok());
  auto ping = client3->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

// --- deadlines, limits, cancellation ----------------------------------------

TEST_F(ServerTest, GovernorDeadlineAndLimitsPropagate) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  std::string big = "append all {1";
  for (int i = 2; i <= 200; ++i) big += ", " + std::to_string(i);
  big += "} to Nums";
  ASSERT_TRUE(server.ExecuteLocal(big).ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());

  // 8M-row cross product against a 1 ms budget: the governor must trip
  // long before completion (kCancelled if the connection backstop fires
  // the token first).
  const std::string heavy =
      "retrieve (a: x, b: y, c: z) from x in Nums, y in Nums, z in Nums";
  auto timed = client->Execute(heavy, /*deadline_ms=*/1);
  ASSERT_TRUE(timed.ok());
  EXPECT_TRUE(timed->code == StatusCode::kDeadlineExceeded ||
              timed->code == StatusCode::kCancelled)
      << StatusCodeToString(timed->code) << ": " << timed->message;

  // Per-request row budget.
  auto rows = client->Execute(heavy, /*deadline_ms=*/30'000, /*max_bytes=*/0,
                              /*max_occurrences=*/1'000);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->code, StatusCode::kResourceExhausted)
      << StatusCodeToString(rows->code) << ": " << rows->message;

  // The connection (and server) shrug off governed failures.
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->code, StatusCode::kOk);
  EXPECT_EQ(count->result, "200");
  server.Shutdown();
}

TEST_F(ServerTest, AdmissionControlShedsWithRetryAfter) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  auto a = Client::ConnectUnix(sock_);
  auto b = Client::ConnectUnix(sock_);
  auto c = Client::ConnectUnix(sock_);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = 30'000;
  req.statement = "retrieve ( count(Nums) )";
  // A's job occupies the only worker (stalled inside the hook); B's fills
  // the queue (capacity 1).
  ASSERT_TRUE(WriteFrame(a->fd(), EncodeRequest(req), 1'000).ok());
  ASSERT_TRUE(hooks.WaitStarted(0, 5'000ms));
  ASSERT_TRUE(WriteFrame(b->fd(), EncodeRequest(req), 1'000).ok());
  auto* depth = obs::MetricsRegistry::Global().GetHistogram(
      "server.queue.depth");
  ASSERT_TRUE(WaitFor([&] { return depth->count() >= 2; }, 5'000ms))
      << "B's job never reached the queue";

  // C must be shed: queue full, worker busy.
  auto shed = c->Execute("retrieve ( count(Nums) )", /*deadline_ms=*/30'000);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, StatusCode::kResourceExhausted) << shed->message;
  EXPECT_GE(shed->retry_after_ms, 1u);
  EXPECT_GE(CounterValue("server.requests.shed"), 1);

  hooks.ReleaseAll();
  for (Client* cl : {&*a, &*b}) {
    auto payload = ReadFrame(cl->fd(), 10'000);
    ASSERT_TRUE(payload.ok());
    auto resp = DecodeResponse(*payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
    EXPECT_EQ(resp->result, "0");
  }
  server.Shutdown();
}

TEST_F(ServerTest, StalledWorkerAbandonedAfterGrace) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.cancel_grace_ms = 200;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto r = client->Execute("retrieve ( count(Nums) )", /*deadline_ms=*/100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kDeadlineExceeded) << r->message;
  EXPECT_NE(r->message.find("abandoned"), std::string::npos) << r->message;
  EXPECT_GE(CounterValue("server.jobs.abandoned"), 1);
  // The abandoning connection is closed: outcome of its job is unknown.
  auto next = ReadFrame(client->fd(), 2'000);
  EXPECT_FALSE(next.ok());

  hooks.ReleaseAll();  // the worker resumes, finds a cancelled token, moves on
  auto client2 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client2.ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto ping = client2->Ping();
        return ping.ok() && ping->code == StatusCode::kOk;
      },
      5'000ms));
  server.Shutdown();
}

TEST_F(ServerTest, DeadClientCancelsItsQuery) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  {
    auto doomed = Client::ConnectUnix(sock_);
    ASSERT_TRUE(doomed.ok());
    Request req;
    req.opcode = Opcode::kStatement;
    req.deadline_ms = 60'000;
    req.statement = "retrieve ( count(Nums) )";
    ASSERT_TRUE(WriteFrame(doomed->fd(), EncodeRequest(req), 1'000).ok());
    ASSERT_TRUE(hooks.WaitStarted(0, 5'000ms));
    doomed->Close();  // client dies mid-query
  }
  EXPECT_TRUE(WaitFor(
      [&] { return CounterValue("server.cancelled.dead_client") >= 1; },
      5'000ms));
  hooks.ReleaseAll();

  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

// --- lifecycle --------------------------------------------------------------

TEST_F(ServerTest, ShutdownOpcodeSignalsDrain) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(server.WaitForShutdownRequest(/*timeout_ms=*/10));
  auto r = client->RequestShutdown();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kOk);
  EXPECT_TRUE(server.WaitForShutdownRequest(/*timeout_ms=*/5'000));
  server.Shutdown();
  // Drained: the socket is gone and fresh connects fail.
  EXPECT_FALSE(Client::ConnectUnix(sock_).ok());
}

TEST_F(ServerTest, GracefulDrainUnderLoadCheckpointsCommittedState) {
  std::string db_path = (dir_ / "drain.db").string();
  ServerOptions opts = Opts();
  opts.workers = 2;
  opts.db_path = db_path;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  std::atomic<int> acked{0};
  std::atomic<int> attempted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::ConnectUnix(sock_);
      if (!client.ok()) return;
      for (int i = 0; i < 200; ++i) {
        if (t == 0) {
          attempted.fetch_add(1);
          auto r = client->Execute("append 1 to Nums", 5'000);
          if (!r.ok()) {
            attempted.fetch_sub(1);  // never reached the server's queue
            break;
          }
          if (r->code == StatusCode::kOk) acked.fetch_add(1);
          if (r->code == StatusCode::kUnavailable) break;
        } else {
          auto r = client->Execute("retrieve ( count(Nums) )", 5'000);
          if (!r.ok() || r->code == StatusCode::kUnavailable) break;
        }
      }
    });
  }
  std::this_thread::sleep_for(100ms);
  server->Shutdown(/*grace_ms=*/5'000);
  for (auto& t : threads) t.join();
  server.reset();

  ASSERT_GT(acked.load(), 0);
  // Reopen: every acked append is durable; nothing beyond the attempts.
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(db_path).ok());
  auto count = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  int64_t recovered = std::stoll((*count)->ToString());
  EXPECT_GE(recovered, acked.load());
  EXPECT_LE(recovered, attempted.load());
}

TEST_F(ServerTest, TcpRoundTrip) {
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);
  auto client = Client::ConnectTcp("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Execute("create Nums: { int4 }")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append all {4, 5} to Nums")->code,
            StatusCode::kOk);
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->code, StatusCode::kOk);
  EXPECT_EQ(count->result, "2");
  server.Shutdown();
}

// --- fault-injection sweep --------------------------------------------------

// Clients die at every third request (after sending, before reading the
// response). Oracle: the server never stops serving, and the reopened
// database holds every acknowledged append, possibly some unacknowledged
// ones (committed but the ack was lost to the client's death), and nothing
// else.
TEST_F(ServerTest, ClientFaultSweepKeepsServingAndDurableStateConsistent) {
  std::string db_path = (dir_ / "sweep.db").string();
  ServerOptions opts = Opts();
  opts.db_path = db_path;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  constexpr int kAttempts = 30;
  std::set<int> acked;
  for (int i = 1; i <= kAttempts; ++i) {
    std::string stmt = "append " + std::to_string(i) + " to Nums";
    if (i % 3 == 0) {
      // Fault point: send, then die without reading the response.
      auto doomed = Client::ConnectUnix(sock_);
      ASSERT_TRUE(doomed.ok());
      Request req;
      req.opcode = Opcode::kStatement;
      req.deadline_ms = 5'000;
      req.statement = stmt;
      ASSERT_TRUE(WriteFrame(doomed->fd(), EncodeRequest(req), 1'000).ok());
      doomed->Close();
    } else {
      auto client = Client::ConnectUnix(sock_);
      ASSERT_TRUE(client.ok());
      auto r = client->Execute(stmt, 5'000);
      ASSERT_TRUE(r.ok());
      if (r->code == StatusCode::kOk) acked.insert(i);
    }
  }
  // Still serving after the burst of client deaths.
  auto survivor = Client::ConnectUnix(sock_);
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto ping = survivor->Ping();
        return ping.ok() && ping->code == StatusCode::kOk;
      },
      5'000ms));
  EXPECT_EQ(acked.size(), static_cast<size_t>(kAttempts - kAttempts / 3));
  server->Shutdown(/*grace_ms=*/5'000);
  server.reset();

  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(db_path).ok());
  // acked ⊆ recovered ⊆ attempted, element by element.
  for (int i = 1; i <= kAttempts; ++i) {
    auto r = s.Execute("retrieve ( count(x from x in Nums where x = " +
                       std::to_string(i) + ") )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t n = std::stoll((*r)->ToString());
    ASSERT_TRUE(n == 0 || n == 1);
    if (acked.count(i) > 0) {
      EXPECT_EQ(n, 1) << "acked append " << i << " lost";
    }
  }
  auto total = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(total.ok());
  int64_t recovered = std::stoll((*total)->ToString());
  EXPECT_GE(recovered, static_cast<int64_t>(acked.size()));
  EXPECT_LE(recovered, static_cast<int64_t>(kAttempts));
}

// --- wire transactions ------------------------------------------------------

TEST_F(ServerTest, WireTxnCommitVisibilityAndLeaseExclusion) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto holder = Client::ConnectUnix(sock_);
  auto other = Client::ConnectUnix(sock_);
  ASSERT_TRUE(holder.ok() && other.ok());

  ASSERT_EQ(holder->Execute("begin")->code, StatusCode::kOk);
  ASSERT_EQ(holder->Execute("append 7 to Nums")->code, StatusCode::kOk);
  // Read-your-writes: the lease holder's reads run on the writer.
  auto mine = holder->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->result, "1");
  // Nobody else sees the uncommitted append (no epoch published mid-txn)…
  auto theirs = other->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(theirs.ok());
  EXPECT_EQ(theirs->code, StatusCode::kOk);
  EXPECT_EQ(theirs->result, "0");
  // …and their writes are blocked with a typed retry-later, not an error
  // that loses work.
  auto blocked = other->Execute("append 8 to Nums");
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->code, StatusCode::kUnavailable) << blocked->message;
  EXPECT_GE(blocked->retry_after_ms, 1u);

  uint64_t before = theirs->epoch;
  auto committed = holder->Execute("commit");
  ASSERT_TRUE(committed.ok());
  ASSERT_EQ(committed->code, StatusCode::kOk) << committed->message;
  EXPECT_GT(committed->epoch, before);  // the commit published the group
  auto after = other->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result, "1");
  // Writer freed: the other connection's write goes through now.
  EXPECT_EQ(other->Execute("append 8 to Nums")->code, StatusCode::kOk);
  EXPECT_GE(CounterValue("server.txn.leases"), 1);
  server.Shutdown();
}

TEST_F(ServerTest, WireTxnRollbackDiscards) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Execute("begin")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append 9 to Nums")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("rollback")->code, StatusCode::kOk);
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "0");
  server.Shutdown();
}

TEST_F(ServerTest, ExpiredLeaseIsReapedWithTypedError) {
  ServerOptions opts = Opts();
  opts.txn_lease_ms = 50;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Execute("begin")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append 1 to Nums")->code, StatusCode::kOk);
  // Outlive the lease: the reaper rolls the transaction back.
  ASSERT_TRUE(WaitFor([&] { return CounterValue("server.txn.reaped") >= 1; },
                      5'000ms));
  // The holder learns its fate through a typed error, once…
  auto stale = client->Execute("append 2 to Nums");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->code, StatusCode::kDeadlineExceeded) << stale->message;
  EXPECT_NE(stale->message.find("lease"), std::string::npos) << stale->message;
  // …and is then a normal auto-commit connection again.
  EXPECT_EQ(client->Execute("append 3 to Nums")->code, StatusCode::kOk);
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "1") << "reaped transaction leaked an append";
  server.Shutdown();
}

TEST_F(ServerTest, DeadClientMidTxnIsReaped) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  {
    auto doomed = Client::ConnectUnix(sock_);
    ASSERT_TRUE(doomed.ok());
    ASSERT_EQ(doomed->Execute("begin")->code, StatusCode::kOk);
    ASSERT_EQ(doomed->Execute("append 5 to Nums")->code, StatusCode::kOk);
  }  // dies holding the lease
  ASSERT_TRUE(WaitFor([&] { return CounterValue("server.txn.reaped") >= 1; },
                      5'000ms));
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "0");
  // The writer is free for the next transaction.
  ASSERT_EQ(client->Execute("begin")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append 6 to Nums")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("commit")->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, TokenedCommitResolvesExactlyOnce) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Execute("begin")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append 11 to Nums")->code, StatusCode::kOk);
  auto first = client->Execute("commit", 0, 0, 0, "tok-1");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->code, StatusCode::kOk) << first->message;
  EXPECT_FALSE(first->resolved_by_token);

  // The retried commit — as a client that lost the ack would send it —
  // resolves from the dedup window instead of double-applying.
  auto again = client->Execute("commit", 0, 0, 0, "tok-1");
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->code, StatusCode::kOk) << again->message;
  EXPECT_TRUE(again->resolved_by_token);
  EXPECT_EQ(again->epoch, first->epoch);
  EXPECT_GE(CounterValue("server.txn.resolved_by_token"), 1);

  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "1");
  // A commit with a FRESH token and no open transaction is a plain error.
  auto fresh = client->Execute("commit", 0, 0, 0, "tok-2");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, CommitTokenSurvivesRestartViaWal) {
  std::string db_path = (dir_ / "tok.db").string();
  // Phase 1: commit a tokened group, then "crash" — no checkpoint, so the
  // WAL still holds the journaled token.
  {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    ASSERT_TRUE(s.OpenStorage(db_path).ok());
    ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
    ASSERT_TRUE(s.Execute("begin").ok());
    ASSERT_TRUE(s.Execute("append 42 to Nums").ok());
    s.set_next_commit_token("restart-tok");
    ASSERT_TRUE(s.Execute("commit").ok());
  }
  // Phase 2: a server recovering that WAL re-seeds its dedup window, so
  // the retried commit resolves instead of failing or double-applying.
  ServerOptions opts = Opts();
  opts.db_path = db_path;
  Server server(opts);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto retried = client->Execute("commit", 0, 0, 0, "restart-tok");
  ASSERT_TRUE(retried.ok());
  ASSERT_EQ(retried->code, StatusCode::kOk) << retried->message;
  EXPECT_TRUE(retried->resolved_by_token);
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "1");
  server.Shutdown();
}

// --- protocol-version negotiation -------------------------------------------

TEST(WireVersionTest, FrameHeaderCarriesMagicAndVersion) {
  std::string frame = FrameBytes("abc");
  ASSERT_GE(frame.size(), 8u);
  EXPECT_EQ(frame[0], 'E');
  EXPECT_EQ(frame[1], 'X');
  EXPECT_EQ(frame[2], 'W');
  EXPECT_EQ(static_cast<uint8_t>(frame[3]), kWireVersion);
}

TEST(WireVersionTest, LegacyFrameIsTypedMismatchNotGarbage) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // A v1 peer: bare length prefix, no magic.
  ASSERT_TRUE(WriteLegacyFrame(sv[0], EncodeLegacyRequest(Request{}), 1'000)
                  .ok());
  int peer_version = 0;
  auto r = ReadFrame(sv[1], 1'000, kMaxFrameBytes, &peer_version);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsVersionMismatch()) << r.status().ToString();
  EXPECT_EQ(peer_version, 1);
  // The legacy frame was drained: a typed reply can go back and the v1
  // peer can read it with its own framing.
  Response resp;
  resp.code = StatusCode::kUnsupported;
  resp.message = "version mismatch";
  ASSERT_TRUE(WriteLegacyFrame(sv[1], EncodeLegacyResponse(resp), 1'000).ok());
  auto back_payload = ReadLegacyFrame(sv[0], 1'000);
  ASSERT_TRUE(back_payload.ok());
  auto back = DecodeLegacyResponse(*back_payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code, StatusCode::kUnsupported);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WireVersionTest, FutureVersionIsTypedMismatch) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string frame = FrameBytes(EncodeRequest(Request{}));
  frame[3] = 3;  // a v3 peer
  ASSERT_EQ(::send(sv[0], frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  int peer_version = 0;
  auto r = ReadFrame(sv[1], 1'000, kMaxFrameBytes, &peer_version);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsVersionMismatch());
  EXPECT_EQ(peer_version, 3);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(ServerTest, ServerAnswersLegacyClientInLegacyFraming) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", sock_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Request req;
  req.statement = "retrieve ( 1 )";
  ASSERT_TRUE(WriteLegacyFrame(fd, EncodeLegacyRequest(req), 1'000).ok());
  auto payload = ReadLegacyFrame(fd, 5'000);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto resp = DecodeLegacyResponse(*payload);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, StatusCode::kUnsupported);
  EXPECT_NE(resp->message.find("version"), std::string::npos)
      << resp->message;
  // The mismatched connection is closed; the server keeps serving v2.
  auto next = ReadLegacyFrame(fd, 2'000);
  EXPECT_FALSE(next.ok());
  ::close(fd);
  EXPECT_GE(CounterValue("server.requests.version_mismatch"), 1);
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->Ping()->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, ServerAnswersFutureVersionWithV2Mismatch) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  std::string frame = FrameBytes(EncodeRequest(Request{}));
  frame[3] = 9;
  ASSERT_EQ(::send(client->fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  auto payload = ReadFrame(client->fd(), 5'000);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto resp = DecodeResponse(*payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kVersionMismatch);
  server.Shutdown();
}

// --- socket I/O hardening ---------------------------------------------------

namespace eintr_detail {
void NoopHandler(int) {}
}  // namespace eintr_detail

TEST(WireRobustnessTest, ReadFrameSurvivesSignalInterruption) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  struct sigaction sa {};
  sa.sa_handler = eintr_detail::NoopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls see EINTR
  struct sigaction old {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  Result<std::string> got = Status::Internal("unset");
  std::thread reader([&] { got = ReadFrame(sv[1], 10'000); });
  // Pepper the blocked reader with signals, then complete the frame.
  for (int i = 0; i < 20; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(WriteFrame(sv[0], EncodeRequest(Request{}), 1'000).ok());
  reader.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(DecodeRequest(*got).ok());
  sigaction(SIGUSR1, &old, nullptr);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WireRobustnessTest, WriteToClosedPeerIsStatusNotSigpipe) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  // Big enough to overflow any kernel buffer: the write itself must fail.
  std::string big(1u << 20, 'x');
  Status st = WriteFrame(sv[0], big, 1'000);
  EXPECT_FALSE(st.ok());  // EPIPE as a Status; SIGPIPE would kill the test
  ::close(sv[0]);
}

TEST(RetryHintTest, ComputeRetryHintMsIsClamped) {
  // Cold EMA / empty queue can never tell clients "retry immediately,
  // forever"…
  EXPECT_EQ(ComputeRetryHintMs(0, 0, 4), 1u);
  EXPECT_EQ(ComputeRetryHintMs(1, 0, 8), 1u);
  // …and a pathological backlog can never park them for minutes.
  EXPECT_EQ(ComputeRetryHintMs(10'000'000, 1'000, 1), 10'000u);
  // In between, the hint scales with backlog over pool width.
  EXPECT_EQ(ComputeRetryHintMs(2'000, 9, 2), 10u);
  EXPECT_EQ(ComputeRetryHintMs(2'000, 9, 1), 20u);
  // Zero workers is treated as one, not a division crash.
  EXPECT_GE(ComputeRetryHintMs(2'000, 9, 0), 1u);
}

// --- reliability layer + chaos ----------------------------------------------

/// Injects one wire fault at a chosen statement-response send.
class FaultOnceHooks : public ServerHooks {
 public:
  FaultOnceHooks(uint64_t at, WireFault mode) : at_(at), mode_(mode) {}
  WireFault OnWireSend(uint64_t idx) override {
    return idx == at_ ? mode_ : WireFault::kNone;
  }

 private:
  uint64_t at_;
  WireFault mode_;
};

TEST_F(ServerTest, DuplicateAckIsDiscardedByReqIdAndClientRecovers) {
  FaultOnceHooks hooks(0, ServerHooks::WireFault::kDuplicateAck);
  ServerOptions opts = Opts();
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  // Send 0 is duplicated (and the connection then dropped): the first copy
  // answers this request…
  auto first = client->Execute("append 1 to Nums");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, StatusCode::kOk);
  // …the second copy is a stale req_id the retrying reader discards after
  // reconnecting past the dropped connection.
  auto second = client->ExecuteRetried("retrieve ( count(Nums) )",
                                       /*deadline_ms=*/5'000, "",
                                       /*idempotent=*/true);
  ASSERT_TRUE(second.transport.ok()) << second.transport.ToString();
  EXPECT_EQ(second.resp.code, StatusCode::kOk) << second.resp.message;
  EXPECT_EQ(second.resp.result, "1");
  EXPECT_EQ(second.applied, Applied::kDefinitely);
  EXPECT_GE(second.reconnects, 1);
  EXPECT_GE(CounterValue("client.reconnect.attempts"), 1);
  server.Shutdown();
}

TEST_F(ServerTest, RetriedCommitAfterLostAckResolvesByToken) {
  // The ack of send 2 (the commit of begin/append/commit) executes, then
  // the connection dies without delivering it — the canonical retried-
  // commit scenario.
  FaultOnceHooks hooks(2, ServerHooks::WireFault::kDropBeforeAck);
  ServerOptions opts = Opts();
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());
  auto connected = Client::ConnectUnix(sock_, /*timeout_ms=*/200);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);
  auto begun = client.Begin(5'000);
  ASSERT_TRUE(begun.transport.ok());
  ASSERT_EQ(begun.resp.code, StatusCode::kOk);
  auto appended = client.Execute("append 21 to Nums");
  ASSERT_TRUE(appended.ok());
  ASSERT_EQ(appended->code, StatusCode::kOk);
  auto committed = client.Commit("lost-ack-tok", 10'000);
  ASSERT_TRUE(committed.transport.ok()) << committed.transport.ToString();
  ASSERT_EQ(committed.resp.code, StatusCode::kOk) << committed.resp.message;
  EXPECT_EQ(committed.applied, Applied::kResolvedByToken);
  EXPECT_GE(committed.reconnects, 1);
  // Exactly once, not zero, not two.
  auto count = client.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result, "1");
  server.Shutdown();
}

/// Faults every Nth statement-response send, cycling through the modes.
class PeriodicFaultHooks : public ServerHooks {
 public:
  explicit PeriodicFaultHooks(uint64_t every) : every_(every) {}
  WireFault OnWireSend(uint64_t idx) override {
    if (idx == 0 || idx % every_ != 0) return WireFault::kNone;
    static constexpr WireFault kModes[] = {
        WireFault::kDropBeforeAck,
        WireFault::kDropAfterAck,
        WireFault::kTornAck,
        WireFault::kDuplicateAck,
    };
    return kModes[(idx / every_) % 4];
  }

 private:
  uint64_t every_;
};

// The acceptance scenario: a live retrying client completes a transactional
// workload against a server whose connections keep getting killed, and the
// final state equals the no-fault reference (every group exactly once).
TEST_F(ServerTest, RetryingClientCompletesTxnWorkloadUnderConnectionChaos) {
  PeriodicFaultHooks hooks(/*every=*/4);
  ServerOptions opts = Opts();
  opts.hooks = &hooks;
  opts.db_path = (dir_ / "chaos.db").string();
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  auto connected = Client::ConnectUnix(sock_, /*timeout_ms=*/500);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);
  constexpr int kGroups = 8;
  for (int g = 1; g <= kGroups; ++g) {
    std::string token = "chaos-" + std::to_string(g);
    bool done = false;
    for (int attempt = 0; attempt < 10 && !done; ++attempt) {
      if (!client.connected() && !client.Reconnect().ok()) continue;
      auto begun = client.Begin(5'000);
      if (!begun.transport.ok() || begun.resp.code != StatusCode::kOk) {
        client.Close();
        continue;
      }
      // Single-shot inside the transaction: a retried append would run
      // outside the (dead, reaped) transaction. Any hiccup abandons the
      // attempt; the reaper keeps the half-group from committing.
      auto appended =
          client.Execute("append " + std::to_string(g) + " to Nums", 5'000);
      if (!appended.ok() || appended->code != StatusCode::kOk) {
        client.Close();
        continue;
      }
      auto committed = client.Commit(token, 10'000);
      if (committed.transport.ok() &&
          committed.resp.code == StatusCode::kOk) {
        done = true;  // kDefinitely or kResolvedByToken: applied exactly once
      } else {
        client.Close();  // definitely-not (or unknown): retry the group
      }
    }
    ASSERT_TRUE(done) << "group " << g << " never committed";
  }
  server->Shutdown();
  server.reset();

  // Reference state: every group exactly once, same as a fault-free run.
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage((dir_ / "chaos.db").string()).ok());
  for (int g = 1; g <= kGroups; ++g) {
    auto r = s.Execute("retrieve ( count(x from x in Nums where x = " +
                       std::to_string(g) + ") )");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(*r != nullptr && (*r)->IsNumeric());
    EXPECT_EQ((*r)->as_int(), 1) << "group " << g;
  }
  auto total = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(total.ok());
  ASSERT_TRUE(*total != nullptr && (*total)->IsNumeric());
  EXPECT_EQ((*total)->as_int(), kGroups);
}

}  // namespace
}  // namespace server
}  // namespace excess
