// The concurrent session server (src/server/): wire-protocol codecs,
// request/response round trips over real unix and TCP sockets, statement
// routing and rejection, admission-control shedding with retry-after,
// deadline propagation into the governor, dead-client cancellation, the
// abandon backstop for stalled workers, graceful drain, and a
// deterministic client-fault sweep with a reopen oracle against the
// committed statements.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/status.h"

namespace excess {
namespace server {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

bool WaitFor(const std::function<bool()>& pred, std::chrono::milliseconds max) {
  auto deadline = std::chrono::steady_clock::now() + max;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// Hooks that stall selected jobs (by global dequeue index) inside a
/// worker until released — the deterministic seam for exercising full
/// queues, abandoned jobs, and dead-client cancellation.
class StallHooks : public ServerHooks {
 public:
  void OnJobStart(uint64_t idx) override {
    std::unique_lock<std::mutex> l(mu_);
    if (stall_.count(idx) == 0) return;
    started_.insert(idx);
    cv_.notify_all();
    cv_.wait(l, [&] { return released_; });
  }
  void StallJob(uint64_t idx) {
    std::lock_guard<std::mutex> l(mu_);
    stall_.insert(idx);
  }
  bool WaitStarted(uint64_t idx, std::chrono::milliseconds max) {
    std::unique_lock<std::mutex> l(mu_);
    return cv_.wait_for(l, max, [&] { return started_.count(idx) > 0; });
  }
  void ReleaseAll() {
    std::lock_guard<std::mutex> l(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<uint64_t> stall_;
  std::set<uint64_t> started_;
  bool released_ = false;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    // Unix socket paths must fit sockaddr_un; keep them short and unique.
    sock_ = "/tmp/exsrv_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock";
    dir_ = fs::temp_directory_path() /
           ("excess_server_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("EXCESS_DB_PATH");
    ::setenv("EXCESS_WAL_FSYNC", "0", 1);
    obs::MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    fs::remove_all(dir_);
    ::unlink(sock_.c_str());
    ::unsetenv("EXCESS_WAL_FSYNC");
    ::unsetenv("EXCESS_DB_PATH");
  }

  ServerOptions Opts() {
    ServerOptions o;
    o.unix_path = sock_;
    o.workers = 2;
    return o;
  }

  std::string sock_;
  fs::path dir_;
};

// --- wire codecs (no sockets) -----------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = 1234;
  req.max_bytes = (1ull << 33) + 7;
  req.max_occurrences = 99;
  req.statement = "retrieve (x) from x in Nums";
  auto back = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->opcode, req.opcode);
  EXPECT_EQ(back->deadline_ms, req.deadline_ms);
  EXPECT_EQ(back->max_bytes, req.max_bytes);
  EXPECT_EQ(back->max_occurrences, req.max_occurrences);
  EXPECT_EQ(back->statement, req.statement);
}

TEST(WireTest, ResponseRoundTrip) {
  Response resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.epoch = 42;
  resp.retry_after_ms = 250;
  resp.message = "admission queue full";
  resp.result = "payload";
  auto back = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code, resp.code);
  EXPECT_EQ(back->epoch, resp.epoch);
  EXPECT_EQ(back->retry_after_ms, resp.retry_after_ms);
  EXPECT_EQ(back->message, resp.message);
  EXPECT_EQ(back->result, resp.result);
}

TEST(WireTest, DecodersAreStrict) {
  // Unknown opcode.
  Request req;
  std::string enc = EncodeRequest(req);
  enc[0] = 77;
  EXPECT_FALSE(DecodeRequest(enc).ok());
  // Truncated payload.
  std::string good = EncodeRequest(req);
  EXPECT_FALSE(DecodeRequest(std::string_view(good).substr(0, 8)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeRequest(good + "x").ok());
  // Unknown status code.
  Response resp;
  std::string renc = EncodeResponse(resp);
  renc[0] = static_cast<char>(200);
  EXPECT_FALSE(DecodeResponse(renc).ok());
  EXPECT_FALSE(DecodeResponse(EncodeResponse(resp) + "x").ok());
}

// --- round trips and epochs -------------------------------------------------

TEST_F(ServerTest, PingStatementsAndEpochs) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());

  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  EXPECT_GE(ping->epoch, 1u);

  uint64_t last_epoch = ping->epoch;
  auto create = client->Execute("create Nums: { int4 }");
  ASSERT_TRUE(create.ok());
  ASSERT_EQ(create->code, StatusCode::kOk) << create->message;
  EXPECT_GT(create->epoch, last_epoch);  // a write publishes a new epoch
  last_epoch = create->epoch;

  auto append = client->Execute("append all {1, 2, 3} to Nums");
  ASSERT_TRUE(append.ok());
  ASSERT_EQ(append->code, StatusCode::kOk) << append->message;
  EXPECT_GT(append->epoch, last_epoch);
  last_epoch = append->epoch;

  // Read-your-writes on one connection, and epochs never go backwards.
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->code, StatusCode::kOk) << count->message;
  EXPECT_EQ(count->result, "3");
  EXPECT_GE(count->epoch, last_epoch);

  // Errors carry the statement's own status, not a transport failure.
  auto bad = client->Execute("retrieve ( count(NoSuchSet) )");
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, ExecuteLocalSeedsBeforeClients) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.ExecuteLocal("append all {5, 6} to Nums").ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->code, StatusCode::kOk) << count->message;
  EXPECT_EQ(count->result, "2");
  server.Shutdown();
}

TEST_F(ServerTest, SessionStatementsAreRejected) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  for (const char* stmt :
       {"open \"nope.db\"", "begin", "commit", "rollback"}) {
    auto r = client->Execute(stmt);
    ASSERT_TRUE(r.ok()) << stmt;
    EXPECT_EQ(r->code, StatusCode::kUnsupported) << stmt;
  }
  // The connection survives rejected statements.
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, ParseErrorKeepsConnection) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto r = client->Execute("retrieve retrieve retrieve");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->code, StatusCode::kOk);
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

TEST_F(ServerTest, MalformedPayloadClosesConnectionServerSurvives) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  // A well-framed but undecodable payload: answered with kInvalid, then
  // the connection is dropped (framing discipline is broken).
  ASSERT_TRUE(WriteFrame(client->fd(), "\xFFgarbage", 1'000).ok());
  auto resp_payload = ReadFrame(client->fd(), 5'000);
  ASSERT_TRUE(resp_payload.ok());
  auto resp = DecodeResponse(*resp_payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kInvalid);
  auto next = ReadFrame(client->fd(), 5'000);
  EXPECT_FALSE(next.ok());  // server closed the connection
  EXPECT_GE(CounterValue("server.requests.malformed"), 1);

  // An oversized length prefix drops the connection outright.
  auto client2 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client2.ok());
  std::string huge_hdr = {'\xFF', '\xFF', '\xFF', '\x7F'};
  ASSERT_EQ(::send(client2->fd(), huge_hdr.data(), 4, MSG_NOSIGNAL), 4);
  auto dropped = ReadFrame(client2->fd(), 5'000);
  EXPECT_FALSE(dropped.ok());

  // The server keeps serving fresh connections.
  auto client3 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client3.ok());
  auto ping = client3->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

// --- deadlines, limits, cancellation ----------------------------------------

TEST_F(ServerTest, GovernorDeadlineAndLimitsPropagate) {
  Server server(Opts());
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  std::string big = "append all {1";
  for (int i = 2; i <= 200; ++i) big += ", " + std::to_string(i);
  big += "} to Nums";
  ASSERT_TRUE(server.ExecuteLocal(big).ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());

  // 8M-row cross product against a 1 ms budget: the governor must trip
  // long before completion (kCancelled if the connection backstop fires
  // the token first).
  const std::string heavy =
      "retrieve (a: x, b: y, c: z) from x in Nums, y in Nums, z in Nums";
  auto timed = client->Execute(heavy, /*deadline_ms=*/1);
  ASSERT_TRUE(timed.ok());
  EXPECT_TRUE(timed->code == StatusCode::kDeadlineExceeded ||
              timed->code == StatusCode::kCancelled)
      << StatusCodeToString(timed->code) << ": " << timed->message;

  // Per-request row budget.
  auto rows = client->Execute(heavy, /*deadline_ms=*/30'000, /*max_bytes=*/0,
                              /*max_occurrences=*/1'000);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->code, StatusCode::kResourceExhausted)
      << StatusCodeToString(rows->code) << ": " << rows->message;

  // The connection (and server) shrug off governed failures.
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->code, StatusCode::kOk);
  EXPECT_EQ(count->result, "200");
  server.Shutdown();
}

TEST_F(ServerTest, AdmissionControlShedsWithRetryAfter) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  auto a = Client::ConnectUnix(sock_);
  auto b = Client::ConnectUnix(sock_);
  auto c = Client::ConnectUnix(sock_);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = 30'000;
  req.statement = "retrieve ( count(Nums) )";
  // A's job occupies the only worker (stalled inside the hook); B's fills
  // the queue (capacity 1).
  ASSERT_TRUE(WriteFrame(a->fd(), EncodeRequest(req), 1'000).ok());
  ASSERT_TRUE(hooks.WaitStarted(0, 5'000ms));
  ASSERT_TRUE(WriteFrame(b->fd(), EncodeRequest(req), 1'000).ok());
  auto* depth = obs::MetricsRegistry::Global().GetHistogram(
      "server.queue.depth");
  ASSERT_TRUE(WaitFor([&] { return depth->count() >= 2; }, 5'000ms))
      << "B's job never reached the queue";

  // C must be shed: queue full, worker busy.
  auto shed = c->Execute("retrieve ( count(Nums) )", /*deadline_ms=*/30'000);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, StatusCode::kResourceExhausted) << shed->message;
  EXPECT_GE(shed->retry_after_ms, 1u);
  EXPECT_GE(CounterValue("server.requests.shed"), 1);

  hooks.ReleaseAll();
  for (Client* cl : {&*a, &*b}) {
    auto payload = ReadFrame(cl->fd(), 10'000);
    ASSERT_TRUE(payload.ok());
    auto resp = DecodeResponse(*payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
    EXPECT_EQ(resp->result, "0");
  }
  server.Shutdown();
}

TEST_F(ServerTest, StalledWorkerAbandonedAfterGrace) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.cancel_grace_ms = 200;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto r = client->Execute("retrieve ( count(Nums) )", /*deadline_ms=*/100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kDeadlineExceeded) << r->message;
  EXPECT_NE(r->message.find("abandoned"), std::string::npos) << r->message;
  EXPECT_GE(CounterValue("server.jobs.abandoned"), 1);
  // The abandoning connection is closed: outcome of its job is unknown.
  auto next = ReadFrame(client->fd(), 2'000);
  EXPECT_FALSE(next.ok());

  hooks.ReleaseAll();  // the worker resumes, finds a cancelled token, moves on
  auto client2 = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client2.ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto ping = client2->Ping();
        return ping.ok() && ping->code == StatusCode::kOk;
      },
      5'000ms));
  server.Shutdown();
}

TEST_F(ServerTest, DeadClientCancelsItsQuery) {
  StallHooks hooks;
  hooks.StallJob(0);
  ServerOptions opts = Opts();
  opts.workers = 1;
  opts.hooks = &hooks;
  Server server(opts);
  ASSERT_TRUE(server.ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server.Start().ok());

  {
    auto doomed = Client::ConnectUnix(sock_);
    ASSERT_TRUE(doomed.ok());
    Request req;
    req.opcode = Opcode::kStatement;
    req.deadline_ms = 60'000;
    req.statement = "retrieve ( count(Nums) )";
    ASSERT_TRUE(WriteFrame(doomed->fd(), EncodeRequest(req), 1'000).ok());
    ASSERT_TRUE(hooks.WaitStarted(0, 5'000ms));
    doomed->Close();  // client dies mid-query
  }
  EXPECT_TRUE(WaitFor(
      [&] { return CounterValue("server.cancelled.dead_client") >= 1; },
      5'000ms));
  hooks.ReleaseAll();

  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->code, StatusCode::kOk);
  server.Shutdown();
}

// --- lifecycle --------------------------------------------------------------

TEST_F(ServerTest, ShutdownOpcodeSignalsDrain) {
  Server server(Opts());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::ConnectUnix(sock_);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(server.WaitForShutdownRequest(/*timeout_ms=*/10));
  auto r = client->RequestShutdown();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kOk);
  EXPECT_TRUE(server.WaitForShutdownRequest(/*timeout_ms=*/5'000));
  server.Shutdown();
  // Drained: the socket is gone and fresh connects fail.
  EXPECT_FALSE(Client::ConnectUnix(sock_).ok());
}

TEST_F(ServerTest, GracefulDrainUnderLoadCheckpointsCommittedState) {
  std::string db_path = (dir_ / "drain.db").string();
  ServerOptions opts = Opts();
  opts.workers = 2;
  opts.db_path = db_path;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  std::atomic<int> acked{0};
  std::atomic<int> attempted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::ConnectUnix(sock_);
      if (!client.ok()) return;
      for (int i = 0; i < 200; ++i) {
        if (t == 0) {
          attempted.fetch_add(1);
          auto r = client->Execute("append 1 to Nums", 5'000);
          if (!r.ok()) {
            attempted.fetch_sub(1);  // never reached the server's queue
            break;
          }
          if (r->code == StatusCode::kOk) acked.fetch_add(1);
          if (r->code == StatusCode::kUnavailable) break;
        } else {
          auto r = client->Execute("retrieve ( count(Nums) )", 5'000);
          if (!r.ok() || r->code == StatusCode::kUnavailable) break;
        }
      }
    });
  }
  std::this_thread::sleep_for(100ms);
  server->Shutdown(/*grace_ms=*/5'000);
  for (auto& t : threads) t.join();
  server.reset();

  ASSERT_GT(acked.load(), 0);
  // Reopen: every acked append is durable; nothing beyond the attempts.
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(db_path).ok());
  auto count = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  int64_t recovered = std::stoll((*count)->ToString());
  EXPECT_GE(recovered, acked.load());
  EXPECT_LE(recovered, attempted.load());
}

TEST_F(ServerTest, TcpRoundTrip) {
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);
  auto client = Client::ConnectTcp("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Execute("create Nums: { int4 }")->code, StatusCode::kOk);
  ASSERT_EQ(client->Execute("append all {4, 5} to Nums")->code,
            StatusCode::kOk);
  auto count = client->Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->code, StatusCode::kOk);
  EXPECT_EQ(count->result, "2");
  server.Shutdown();
}

// --- fault-injection sweep --------------------------------------------------

// Clients die at every third request (after sending, before reading the
// response). Oracle: the server never stops serving, and the reopened
// database holds every acknowledged append, possibly some unacknowledged
// ones (committed but the ack was lost to the client's death), and nothing
// else.
TEST_F(ServerTest, ClientFaultSweepKeepsServingAndDurableStateConsistent) {
  std::string db_path = (dir_ / "sweep.db").string();
  ServerOptions opts = Opts();
  opts.db_path = db_path;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->ExecuteLocal("create Nums: { int4 }").ok());
  ASSERT_TRUE(server->Start().ok());

  constexpr int kAttempts = 30;
  std::set<int> acked;
  for (int i = 1; i <= kAttempts; ++i) {
    std::string stmt = "append " + std::to_string(i) + " to Nums";
    if (i % 3 == 0) {
      // Fault point: send, then die without reading the response.
      auto doomed = Client::ConnectUnix(sock_);
      ASSERT_TRUE(doomed.ok());
      Request req;
      req.opcode = Opcode::kStatement;
      req.deadline_ms = 5'000;
      req.statement = stmt;
      ASSERT_TRUE(WriteFrame(doomed->fd(), EncodeRequest(req), 1'000).ok());
      doomed->Close();
    } else {
      auto client = Client::ConnectUnix(sock_);
      ASSERT_TRUE(client.ok());
      auto r = client->Execute(stmt, 5'000);
      ASSERT_TRUE(r.ok());
      if (r->code == StatusCode::kOk) acked.insert(i);
    }
  }
  // Still serving after the burst of client deaths.
  auto survivor = Client::ConnectUnix(sock_);
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto ping = survivor->Ping();
        return ping.ok() && ping->code == StatusCode::kOk;
      },
      5'000ms));
  EXPECT_EQ(acked.size(), static_cast<size_t>(kAttempts - kAttempts / 3));
  server->Shutdown(/*grace_ms=*/5'000);
  server.reset();

  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(db_path).ok());
  // acked ⊆ recovered ⊆ attempted, element by element.
  for (int i = 1; i <= kAttempts; ++i) {
    auto r = s.Execute("retrieve ( count(x from x in Nums where x = " +
                       std::to_string(i) + ") )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t n = std::stoll((*r)->ToString());
    ASSERT_TRUE(n == 0 || n == 1);
    if (acked.count(i) > 0) {
      EXPECT_EQ(n, 1) << "acked append " << i << " lost";
    }
  }
  auto total = s.Execute("retrieve ( count(Nums) )");
  ASSERT_TRUE(total.ok());
  int64_t recovered = std::stoll((*total)->ToString());
  EXPECT_GE(recovered, static_cast<int64_t>(acked.size()));
  EXPECT_LE(recovered, static_cast<int64_t>(kAttempts));
}

}  // namespace
}  // namespace server
}  // namespace excess
