#include "util/status.h"

#include <gtest/gtest.h>

namespace excess {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::TypeError("bad sort");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTypeError());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.ToString(), "TypeError: bad sort");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EXA_ASSIGN_OR_RETURN(int h, Half(x));
  EXA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status CheckEven(int x) {
  EXA_RETURN_NOT_OK(Half(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace excess
