#include "objects/value.h"

#include <gtest/gtest.h>

namespace excess {
namespace {

TEST(ValueTest, ScalarEqualityIsStrictOnKind) {
  EXPECT_TRUE(Value::Int(1)->Equals(*Value::Int(1)));
  EXPECT_FALSE(Value::Int(1)->Equals(*Value::Int(2)));
  // Value equality does not coerce; comparison predicates do.
  EXPECT_FALSE(Value::Int(1)->Equals(*Value::Float(1.0)));
  EXPECT_TRUE(Value::Str("a")->Equals(*Value::Str("a")));
  EXPECT_TRUE(Value::Bool(true)->Equals(*Value::Bool(true)));
  EXPECT_TRUE(Value::Date(10)->Equals(*Value::Date(10)));
  EXPECT_FALSE(Value::Date(10)->Equals(*Value::Int(10)));
}

TEST(ValueTest, NullsEqualThemselves) {
  EXPECT_TRUE(Value::Dne()->Equals(*Value::Dne()));
  EXPECT_TRUE(Value::Unk()->Equals(*Value::Unk()));
  EXPECT_FALSE(Value::Dne()->Equals(*Value::Unk()));
  EXPECT_TRUE(Value::Dne()->is_null());
  EXPECT_TRUE(Value::Unk()->is_null());
}

TEST(ValueTest, TupleRecordEquality) {
  ValuePtr a = Value::Tuple({"x", "y"}, {Value::Int(1), Value::Int(2)});
  ValuePtr b = Value::Tuple({"y", "x"}, {Value::Int(2), Value::Int(1)});
  // Same (name, value) multiset, different order: equal (rule 23 support).
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  ValuePtr c = Value::Tuple({"x", "y"}, {Value::Int(2), Value::Int(1)});
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ValueTest, TupleTagIsNotPartOfTheValue) {
  ValuePtr plain = Value::Tuple({"x"}, {Value::Int(1)});
  ValuePtr tagged = Value::Retag(plain, "Point");
  EXPECT_TRUE(plain->Equals(*tagged));  // purely value-based equality
  EXPECT_EQ(tagged->type_tag(), "Point");
}

TEST(ValueTest, TupleFieldAccess) {
  ValuePtr t = Value::Tuple({"a", "b"}, {Value::Int(1), Value::Str("s")});
  EXPECT_EQ((*t->Field("a"))->as_int(), 1);
  EXPECT_TRUE(t->Field("zz").status().IsNotFound());
  EXPECT_EQ((*t->FieldAt(1))->as_string(), "s");
  EXPECT_TRUE(t->FieldAt(5).status().IsNotFound());
  EXPECT_TRUE(Value::Int(1)->Field("a").status().IsTypeError());
}

TEST(ValueTest, MultisetNormalization) {
  ValuePtr s = Value::SetOf({Value::Int(1), Value::Int(2), Value::Int(1)});
  EXPECT_EQ(s->TotalCount(), 3);
  EXPECT_EQ(s->DistinctCount(), 2);
  EXPECT_EQ(s->CountOf(Value::Int(1)), 2);
  EXPECT_EQ(s->CountOf(Value::Int(9)), 0);
}

TEST(ValueTest, MultisetEqualityIsPerElementCardinality) {
  ValuePtr a = Value::SetOf({Value::Int(1), Value::Int(1), Value::Int(2)});
  ValuePtr b = Value::SetOfCounted({{Value::Int(2), 1}, {Value::Int(1), 2}});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  ValuePtr c = Value::SetOf({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(a->Equals(*c));  // cardinalities differ
}

TEST(ValueTest, MultisetDiscardsDne) {
  ValuePtr s = Value::SetOf({Value::Int(1), Value::Dne(), Value::Dne()});
  EXPECT_EQ(s->TotalCount(), 1);
  // unk is a real value and is retained.
  ValuePtr u = Value::SetOf({Value::Int(1), Value::Unk()});
  EXPECT_EQ(u->TotalCount(), 2);
}

TEST(ValueTest, SetOfCountedMergesAndDropsNonPositive) {
  ValuePtr s = Value::SetOfCounted(
      {{Value::Int(7), 2}, {Value::Int(7), 3}, {Value::Int(8), 0}});
  EXPECT_EQ(s->CountOf(Value::Int(7)), 5);
  EXPECT_EQ(s->DistinctCount(), 1);
}

TEST(ValueTest, ArraysKeepOrderAndDropDne) {
  ValuePtr a =
      Value::ArrayOf({Value::Int(3), Value::Dne(), Value::Int(1)});
  EXPECT_EQ(a->ArrayLength(), 2);
  EXPECT_EQ(a->elems()[0]->as_int(), 3);
  EXPECT_EQ(a->elems()[1]->as_int(), 1);
  ValuePtr b = Value::ArrayOf({Value::Int(1), Value::Int(3)});
  EXPECT_FALSE(a->Equals(*b));  // order matters for arrays
}

TEST(ValueTest, RefEqualityIsOidEquality) {
  ValuePtr r1 = Value::RefTo({1, 7});
  ValuePtr r2 = Value::RefTo({1, 7});
  ValuePtr r3 = Value::RefTo({1, 8});
  EXPECT_TRUE(r1->Equals(*r2));
  EXPECT_FALSE(r1->Equals(*r3));
  EXPECT_EQ(r1->Hash(), r2->Hash());
}

TEST(ValueTest, DeepNestedEquality) {
  auto mk = [] {
    return Value::SetOf(
        {Value::Tuple({"xs", "r"},
                      {Value::ArrayOf({Value::Int(1), Value::Int(2)}),
                       Value::RefTo({2, 5})}),
         Value::Tuple({"xs", "r"},
                      {Value::EmptyArray(), Value::RefTo({2, 6})})});
  };
  EXPECT_TRUE(mk()->Equals(*mk()));
  EXPECT_EQ(mk()->Hash(), mk()->Hash());
}

TEST(ValueTest, PaperInstanceOfFigure2) {
  // { (26, [1, 2], x), (25, [], y) } with x, y distinct OIDs.
  ValuePtr inst = Value::SetOf(
      {Value::Tuple({"a", "b", "c"},
                    {Value::Int(26),
                     Value::ArrayOf({Value::Int(1), Value::Int(2)}),
                     Value::RefTo({9, 0})}),
       Value::Tuple({"a", "b", "c"},
                    {Value::Int(25), Value::EmptyArray(),
                     Value::RefTo({9, 1})})});
  EXPECT_EQ(inst->TotalCount(), 2);
  EXPECT_EQ(inst->DistinctCount(), 2);
}

TEST(ValueTest, CompareCoercesNumerics) {
  EXPECT_EQ(*Value::Compare(*Value::Int(1), *Value::Float(1.5)), -1);
  EXPECT_EQ(*Value::Compare(*Value::Float(2.0), *Value::Int(2)), 0);
  EXPECT_EQ(*Value::Compare(*Value::Str("b"), *Value::Str("a")), 1);
  EXPECT_EQ(*Value::Compare(*Value::Bool(false), *Value::Bool(true)), -1);
  EXPECT_TRUE(
      Value::Compare(*Value::Int(1), *Value::Str("x")).status().IsTypeError());
  EXPECT_FALSE(Value::Compare(*Value::Dne(), *Value::Int(1)).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(5)->ToString(), "5");
  EXPECT_EQ(Value::Str("hi")->ToString(), "\"hi\"");
  EXPECT_EQ(Value::SetOf({Value::Int(1), Value::Int(1)})->ToString(),
            "{1 x2}");
  EXPECT_EQ(Value::ArrayOf({Value::Int(1), Value::Int(2)})->ToString(),
            "[1, 2]");
  EXPECT_EQ(
      Value::Tuple({"a"}, {Value::Int(1)}, "T")->ToString(), "T(a: 1)");
}

TEST(ValueTest, EmptyCollections) {
  EXPECT_EQ(Value::EmptySet()->TotalCount(), 0);
  EXPECT_TRUE(Value::EmptySet()->Equals(*Value::SetOf({})));
  EXPECT_EQ(Value::EmptyArray()->ArrayLength(), 0);
  EXPECT_TRUE(Value::EmptyArray()->Equals(*Value::ArrayOf({})));
  EXPECT_FALSE(Value::EmptySet()->Equals(*Value::EmptyArray()));
}

}  // namespace
}  // namespace excess
