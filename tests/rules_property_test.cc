// Property-based equivalence tests: every transformation rule is applied
// to expressions over *randomized* data (parameterized by seed) and the
// rewritten tree must evaluate to the same value. This is the executable
// form of the Appendix's omitted validity proofs.

#include <gtest/gtest.h>

#include <random>

#include "core/builder.h"
#include "core/eval.h"
#include "core/kernels.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

/// Random multiset of small ints with random cardinalities (possibly empty
/// unless min_size > 0).
ValuePtr RandomIntSet(std::mt19937* rng, int max_distinct = 6,
                      int min_size = 0) {
  std::uniform_int_distribution<int> n(min_size, max_distinct);
  std::uniform_int_distribution<int64_t> v(0, 7);
  std::uniform_int_distribution<int64_t> c(1, 3);
  std::vector<SetEntry> entries;
  int count = n(*rng);
  for (int i = 0; i < count; ++i) entries.push_back({I(v(*rng)), c(*rng)});
  return Value::SetOfCounted(std::move(entries));
}

/// Random multiset of (k, v) tuples.
ValuePtr RandomPairSet(std::mt19937* rng, int min_size = 0) {
  std::uniform_int_distribution<int> n(min_size, 6);
  std::uniform_int_distribution<int64_t> v(0, 5);
  std::vector<ValuePtr> elems;
  int count = n(*rng);
  for (int i = 0; i < count; ++i) {
    elems.push_back(
        Value::Tuple({"k", "v"}, {I(v(*rng)), I(v(*rng))}));
  }
  return Value::SetOf(elems);
}

/// Random multiset of small int multisets.
ValuePtr RandomNestedSet(std::mt19937* rng) {
  std::uniform_int_distribution<int> n(0, 4);
  std::vector<ValuePtr> elems;
  int count = n(*rng);
  for (int i = 0; i < count; ++i) elems.push_back(RandomIntSet(rng, 3));
  return Value::SetOf(elems);
}

ValuePtr RandomIntArray(std::mt19937* rng, int max_len = 8) {
  std::uniform_int_distribution<int> n(0, max_len);
  std::uniform_int_distribution<int64_t> v(0, 9);
  std::vector<ValuePtr> elems;
  int count = n(*rng);
  for (int i = 0; i < count; ++i) elems.push_back(I(v(*rng)));
  return Value::ArrayOf(std::move(elems));
}

class RulePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  RulePropertyTest() : rng_(static_cast<uint32_t>(GetParam())) {}

  void ExpectAllRewritesEquivalent(const std::string& rule, const ExprPtr& e,
                                   bool must_fire = true) {
    Rewriter rw(&db_, RuleSet::Only({rule}));
    auto neighbors = rw.EnumerateNeighbors(e);
    if (must_fire) {
      ASSERT_FALSE(neighbors.empty())
          << rule << " did not fire on\n"
          << e->ToTreeString();
    }
    Evaluator ev(&db_);
    auto before = ev.Eval(e);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    for (const auto& n : neighbors) {
      auto after = ev.Eval(n);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      EXPECT_TRUE((*before)->Equals(**after))
          << rule << " changed semantics (seed " << GetParam() << ")\n"
          << "before tree:\n" << e->ToTreeString()
          << "after tree:\n" << n->ToTreeString()
          << "before: " << (*before)->ToString()
          << "\nafter:  " << (*after)->ToString();
    }
  }

  std::mt19937 rng_;
  Database db_;
};

TEST_P(RulePropertyTest, Rule1Associativity) {
  ExprPtr e = AddUnion(Const(RandomIntSet(&rng_)),
                       AddUnion(Const(RandomIntSet(&rng_)),
                                Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("addunion-assoc-left", e);
  ExprPtr f = AddUnion(AddUnion(Const(RandomIntSet(&rng_)),
                                Const(RandomIntSet(&rng_))),
                       Const(RandomIntSet(&rng_)));
  ExpectAllRewritesEquivalent("addunion-assoc-right", f);
}

TEST_P(RulePropertyTest, Rule2Distribution) {
  ExprPtr e = Cross(Const(RandomIntSet(&rng_)),
                    AddUnion(Const(RandomIntSet(&rng_)),
                             Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("cross-distributes-over-addunion", e);
}

TEST_P(RulePropertyTest, Rule4DisjunctiveSelection) {
  std::uniform_int_distribution<int64_t> t(0, 7);
  ExprPtr e = Select(Predicate::Or(Lt(Input(), IntLit(t(rng_))),
                                   Gt(Input(), IntLit(t(rng_)))),
                     Const(RandomIntSet(&rng_)));
  ExpectAllRewritesEquivalent("split-disjunctive-selection", e);
}

TEST_P(RulePropertyTest, Rule5CrossElimination) {
  // B must be non-empty (the rule's standing assumption).
  ExprPtr e = DupElim(SetApply(TupExtract("k", TupExtract("_1", Input())),
                               Cross(Const(RandomPairSet(&rng_)),
                                     Const(RandomIntSet(&rng_, 6, 1)))));
  ExpectAllRewritesEquivalent("eliminate-cross-under-de", e);
}

TEST_P(RulePropertyTest, Rule6DeOfGroup) {
  ExprPtr e = DupElim(Group(Arith("%", Input(), IntLit(3)),
                            Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("de-of-group-is-group", e);
}

TEST_P(RulePropertyTest, Rule7DeOverCross) {
  ExprPtr e = DupElim(Cross(Const(RandomIntSet(&rng_)),
                            Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("distribute-de-over-cross", e);
}

TEST_P(RulePropertyTest, Rule8DeBeforeGroup) {
  ExprPtr e = SetApply(DupElim(Input()),
                       Group(Arith("%", Input(), IntLit(2)),
                             Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("de-before-group", e);
  // And the exploratory reverse.
  ExprPtr f = Group(Arith("%", Input(), IntLit(2)),
                    DupElim(Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("group-then-de-per-group", f);
}

TEST_P(RulePropertyTest, Rule9GroupOneSidedCross) {
  ExprPtr e = Group(TupExtract("k", TupExtract("_1", Input())),
                    Cross(Const(RandomPairSet(&rng_)),
                          Const(RandomIntSet(&rng_, 6, 1))));
  ExpectAllRewritesEquivalent("group-cross-one-sided", e);
}

TEST_P(RulePropertyTest, Rule11CollapseOverAddUnion) {
  ExprPtr e = SetCollapse(AddUnion(Const(RandomNestedSet(&rng_)),
                                   Const(RandomNestedSet(&rng_))));
  ExpectAllRewritesEquivalent("collapse-distributes-over-addunion", e);
}

TEST_P(RulePropertyTest, Rule12ApplyOverAddUnion) {
  ExprPtr e = SetApply(Arith("*", Input(), IntLit(2)),
                       AddUnion(Const(RandomIntSet(&rng_)),
                                Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("apply-distributes-over-addunion", e);
}

TEST_P(RulePropertyTest, Rule13ApplyOverCross) {
  ExprPtr e = SetApply(
      TupCat(Project({"k"}, TupExtract("_1", Input())),
             Project({"v"}, TupExtract("_2", Input()))),
      Cross(Const(RandomPairSet(&rng_)), Const(RandomPairSet(&rng_))));
  ExpectAllRewritesEquivalent("apply-distributes-over-cross", e);
}

TEST_P(RulePropertyTest, Rule14ApplyCollapse) {
  ExprPtr e = SetApply(Arith("+", Input(), IntLit(1)),
                       SetCollapse(Const(RandomNestedSet(&rng_))));
  ExpectAllRewritesEquivalent("push-apply-inside-collapse", e);
}

TEST_P(RulePropertyTest, Rule15Composition) {
  // Composition with a dne-producing inner stage: exactness relies on the
  // evaluator's uniform null propagation.
  std::uniform_int_distribution<int64_t> t(0, 7);
  ExprPtr e = SetApply(
      Arith("*", Input(), IntLit(2)),
      SetApply(Comp(Gt(Input(), IntLit(t(rng_))), Input()),
               Const(RandomIntSet(&rng_))));
  ExpectAllRewritesEquivalent("combine-set-applys", e);
}

TEST_P(RulePropertyTest, Rule20SubarrComposition) {
  std::uniform_int_distribution<int64_t> b(1, 6);
  int64_t m = b(rng_);
  int64_t n = m + b(rng_) % 3;
  int64_t j = b(rng_);
  int64_t k = j + b(rng_) % 4;
  ExprPtr e = SubArr(m, n, SubArr(j, k, Const(RandomIntArray(&rng_))));
  ExpectAllRewritesEquivalent("combine-subarrs", e);
}

TEST_P(RulePropertyTest, Rule22SubarrThroughApply) {
  std::uniform_int_distribution<int64_t> b(1, 5);
  int64_t m = b(rng_);
  ExprPtr e = SubArr(m, m + 2,
                     ArrApply(Arith("+", Input(), IntLit(3)),
                              Const(RandomIntArray(&rng_))));
  ExpectAllRewritesEquivalent("subarr-before-arrapply", e);
}

TEST_P(RulePropertyTest, Rule23TupCatCommutes) {
  std::uniform_int_distribution<int64_t> v(0, 9);
  ExprPtr e = TupCat(Const(Value::Tuple({"a", "b"}, {I(v(rng_)), I(v(rng_))})),
                     Const(Value::Tuple({"c"}, {I(v(rng_))})));
  ExpectAllRewritesEquivalent("tupcat-commute", e);
}

TEST_P(RulePropertyTest, Rule27CompComposition) {
  std::uniform_int_distribution<int64_t> t(0, 9);
  ValuePtr tup = Value::Tuple({"x", "y"}, {I(t(rng_)), I(t(rng_))});
  ExprPtr e = Comp(Gt(TupExtract("x", Input()), IntLit(t(rng_))),
                   Comp(Lt(TupExtract("y", Input()), IntLit(t(rng_))),
                        Const(tup)));
  ExpectAllRewritesEquivalent("combine-comps", e);
}

TEST_P(RulePropertyTest, DerivedUnionIntersectIdentities) {
  // Appendix §1 definitions vs direct kernels, over random data.
  ValuePtr a = RandomIntSet(&rng_);
  ValuePtr b = RandomIntSet(&rng_);
  Evaluator ev(&db_);
  ValuePtr u = *ev.Eval(Union(Const(a), Const(b)));
  EXPECT_TRUE(u->Equals(**kernels::MaxUnion(a, b)));
  ValuePtr i = *ev.Eval(Intersect(Const(a), Const(b)));
  EXPECT_TRUE(i->Equals(**kernels::MinIntersect(a, b)));
}

TEST_P(RulePropertyTest, MultisetAxioms) {
  ValuePtr a = RandomIntSet(&rng_);
  ValuePtr b = RandomIntSet(&rng_);
  ValuePtr c = RandomIntSet(&rng_);
  // ⊎ commutes and associates.
  EXPECT_TRUE((*kernels::AddUnion(a, b))->Equals(**kernels::AddUnion(b, a)));
  EXPECT_TRUE(
      (*kernels::AddUnion(a, *kernels::AddUnion(b, c)))
          ->Equals(**kernels::AddUnion(*kernels::AddUnion(a, b), c)));
  // A − A = ∅; DE idempotent; (A ⊎ B) − B = A.
  EXPECT_EQ((*kernels::Diff(a, a))->TotalCount(), 0);
  EXPECT_TRUE((*kernels::DupElim(*kernels::DupElim(a)))
                  ->Equals(**kernels::DupElim(a)));
  EXPECT_TRUE((*kernels::Diff(*kernels::AddUnion(a, b), b))->Equals(*a));
}

TEST_P(RulePropertyTest, ArrayAxioms) {
  ValuePtr a = RandomIntArray(&rng_);
  ValuePtr b = RandomIntArray(&rng_);
  // ARR_CAT length additivity; full-range SUBARR is identity; ARR_DE
  // idempotent.
  EXPECT_EQ((*kernels::ArrCat(a, b))->ArrayLength(),
            a->ArrayLength() + b->ArrayLength());
  EXPECT_TRUE((*kernels::SubArr(1, a->ArrayLength(), a))->Equals(*a));
  ValuePtr de = *kernels::ArrDupElim(a);
  EXPECT_TRUE((*kernels::ArrDupElim(de))->Equals(*de));
  // ARR_DIFF(A, A) is empty.
  EXPECT_EQ((*kernels::ArrDiff(a, a))->ArrayLength(), 0);
}

TEST_P(RulePropertyTest, HeuristicRewriteAlwaysPreservesSemantics) {
  // A randomized pipeline through several operators; the whole heuristic
  // rule set at fixpoint must preserve the result.
  std::uniform_int_distribution<int64_t> t(0, 7);
  ExprPtr e = DupElim(SetApply(
      Arith("+", Input(), IntLit(t(rng_))),
      SetApply(Comp(Gt(Input(), IntLit(t(rng_))), Input()),
               AddUnion(Const(RandomIntSet(&rng_)),
                        Const(RandomIntSet(&rng_))))));
  Rewriter rw(&db_, RuleSet::Heuristic());
  auto rewritten = rw.Rewrite(e);
  ASSERT_TRUE(rewritten.ok());
  Evaluator ev(&db_);
  EXPECT_TRUE((*ev.Eval(e))->Equals(**ev.Eval(*rewritten)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulePropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace excess
