// Failure injection and adversarial inputs: every layer must fail with a
// descriptive Status — never crash, never silently return wrong data —
// when handed dangling references, sort errors, runtime arithmetic
// failures, deep nesting, or mid-query store mutations.

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/eval.h"
#include "core/infer.h"
#include "core/planner.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "university/university.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

class RobustnessTest : public ::testing::Test {
 protected:
  Result<ValuePtr> Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    return ev.Eval(e);
  }
  Database db_;
};

TEST_F(RobustnessTest, DanglingReferenceInsideQuery) {
  // A ref to an object that was never created: DEREF fails mid-scan and
  // the whole query reports NotFound (no partial results).
  ValuePtr bad = Value::SetOf({Value::RefTo({31, 41})});
  auto r = Run(SetApply(Deref(Input()), Const(bad)));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_NE(r.status().message().find("dangling"), std::string::npos);
}

TEST_F(RobustnessTest, SortErrorsAreTypeErrors) {
  // The many-sorted algebra rejects wrong-sort operands at run time.
  EXPECT_TRUE(Run(DupElim(IntLit(1))).status().IsTypeError());
  EXPECT_TRUE(Run(SetCollapse(Const(Value::SetOf({I(1)}))))
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(Run(ArrCollapse(Const(Value::ArrayOf({I(1)}))))
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(Run(TupCat(IntLit(1), IntLit(2))).status().IsTypeError());
  EXPECT_TRUE(Run(Group(Input(), IntLit(3))).status().IsTypeError());
  EXPECT_TRUE(
      Run(AddUnion(Const(Value::SetOf({})), Const(Value::EmptyArray())))
          .status()
          .IsTypeError());
}

TEST_F(RobustnessTest, RuntimeErrorsInsideLoopsPropagate) {
  // Division by zero on the third element aborts the SET_APPLY cleanly.
  ValuePtr data = Value::SetOf({I(1), I(2), I(0)});
  auto r = Run(SetApply(Arith("/", IntLit(10), Input()), Const(data)));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsEvalError());
  // Errors inside a GRP key expression too.
  auto g = Run(Group(Arith("%", IntLit(1), Input()), Const(data)));
  EXPECT_FALSE(g.ok());
  // And inside predicate atoms: ordering a string against an int.
  auto p = Run(Select(Lt(Input(), StrLit("x")), Const(data)));
  EXPECT_TRUE(p.status().IsTypeError());
}

TEST_F(RobustnessTest, DeeplyNestedStructuresAndPlans) {
  // 200 levels of singleton nesting, built and collapsed back down.
  ExprPtr e = Const(Value::SetOf({I(7)}));
  for (int i = 0; i < 200; ++i) e = SetMake(e);
  for (int i = 0; i < 200; ++i) e = SetCollapse(SetMake(e));
  auto r = Run(e);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Long SET_APPLY chains rewrite and evaluate fine.
  ExprPtr chain = Const(Value::SetOf({I(1), I(2)}));
  for (int i = 0; i < 100; ++i) {
    chain = SetApply(Arith("+", Input(), IntLit(1)), chain);
  }
  Planner planner(&db_);
  auto plan = planner.Optimize(chain);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT((*plan)->NodeCount(), chain->NodeCount());
  Evaluator ev(&db_);
  EXPECT_TRUE((*ev.Eval(chain))->Equals(**ev.Eval(*plan)));
}

TEST_F(RobustnessTest, StoreMutationBetweenPlanAndExecution) {
  // Plans hold names, not snapshots: updating the named object between
  // optimization and execution is visible (and safe).
  ASSERT_TRUE(db_.CreateNamed("S", Schema::Set(IntSchema()),
                              Value::SetOf({I(1), I(2)}))
                  .ok());
  ExprPtr q = SetApply(Arith("*", Input(), IntLit(2)), Var("S"));
  Planner planner(&db_);
  ExprPtr plan = *planner.Optimize(q);
  ASSERT_TRUE(db_.SetNamed("S", Value::SetOf({I(10)})).ok());
  EXPECT_TRUE((*Run(plan))->Equals(*Value::SetOf({I(20)})));
}

TEST_F(RobustnessTest, MethodBodyErrorsSurface) {
  ASSERT_TRUE(db_.catalog().DefineType("T", Schema::Tup({{"x", IntSchema()}}))
                  .ok());
  MethodRegistry methods(&db_.catalog());
  // Body divides by a parameter; passing zero fails cleanly at call time.
  ASSERT_TRUE(methods
                  .Define({"T", "div", {"d"}, IntSchema(),
                           Arith("/", TupExtract("x", Input()), Param(0))})
                  .ok());
  Evaluator ev(&db_, &methods);
  ValuePtr t = Value::Tuple({"x"}, {I(10)}, "T");
  auto ok = ev.Eval(MethodCall("div", Const(t), {IntLit(2)}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->as_int(), 5);
  auto bad = ev.Eval(MethodCall("div", Const(t), {IntLit(0)}));
  EXPECT_TRUE(bad.status().IsEvalError());
  // Unbound parameter (arity mismatch at the call site).
  auto unbound = ev.Eval(MethodCall("div", Const(t)));
  EXPECT_TRUE(unbound.status().IsEvalError());
  // Unknown method.
  auto missing = ev.Eval(MethodCall("nope", Const(t)));
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(RobustnessTest, SessionRecoversAfterErrors) {
  UniversityParams p;
  p.num_employees = 12;
  ASSERT_TRUE(BuildUniversity(&db_, p).ok());
  MethodRegistry methods(&db_.catalog());
  Session session(&db_, &methods);
  // A parse error, a translation error, and an eval error in sequence...
  EXPECT_FALSE(session.Execute("retrieve (").ok());
  EXPECT_FALSE(session.Execute("retrieve (Ghost.name)").ok());
  EXPECT_FALSE(
      session.Execute("retrieve (Employees.salary / 0)").ok());
  // ...leave the session fully usable.
  auto ok = session.Execute("retrieve ( count(Employees) )");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->as_int(), 12);
}

TEST_F(RobustnessTest, InferenceCatchesWhatEvaluationWould) {
  // Static inference flags the same sort errors the evaluator reports, so
  // plans can be rejected before touching data.
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema())).ok());
  TypeInference infer(&db_);
  ExprPtr bad1 = DupElim(TupExtract("x", Var("Nums")));
  EXPECT_TRUE(infer.Infer(bad1).status().IsTypeError());
  ExprPtr bad2 = ArrExtract(1, Var("Nums"));
  EXPECT_TRUE(infer.Infer(bad2).status().IsTypeError());
  ExprPtr bad3 = SetApply(Deref(Input()), Var("Nums"));  // deref an int
  EXPECT_TRUE(infer.Infer(bad3).status().IsTypeError());
}

TEST_F(RobustnessTest, EmptyInputsEverywhere) {
  ExprPtr empty = Const(Value::EmptySet());
  EXPECT_EQ((*Run(SetApply(Arith("+", Input(), IntLit(1)), empty)))
                ->TotalCount(),
            0);
  EXPECT_EQ((*Run(Group(Input(), empty)))->TotalCount(), 0);
  EXPECT_EQ((*Run(Cross(empty, Const(Value::SetOf({I(1)})))))->TotalCount(),
            0);
  EXPECT_EQ((*Run(Agg("count", empty)))->as_int(), 0);
  EXPECT_TRUE((*Run(Agg("max", empty)))->is_dne());
  ExprPtr earr = Const(Value::EmptyArray());
  EXPECT_TRUE((*Run(ArrExtract(1, earr)))->is_dne());
  EXPECT_EQ((*Run(SubArr(1, 5, earr)))->ArrayLength(), 0);
}

TEST_F(RobustnessTest, HugeCardinalitiesStayExact) {
  // Counts are int64: additive union near the billions stays exact.
  ValuePtr big = Value::SetOfCounted({{I(1), 3'000'000'000LL}});
  auto r = Run(AddUnion(Const(big), Const(big)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->CountOf(I(1)), 6'000'000'000LL);
  EXPECT_EQ((*r)->TotalCount(), 6'000'000'000LL);
}

}  // namespace
}  // namespace excess
