// Quickstart: define a schema, load data, and query it three ways —
// through the EXCESS language, through the algebra builders, and through
// the optimizer. Mirrors the README walkthrough.

#include <cstdio>

#include "core/builder.h"
#include "core/eval.h"
#include "core/planner.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"

using namespace excess;  // NOLINT(build/namespaces) — example code

int main() {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);

  // 1. DDL: a tiny library catalog. `ref` marks object identity; plain
  //    nesting (the `authors` multiset) is value semantics.
  auto ddl = session.Execute(R"(
    define type Author: ( name: char[], born: int4 )
    define type Book: (
      title: char[],
      year: int4,
      authors: { Author },
      publisher: ref Publisher )
    define type Publisher: ( name: char[], city: char[] )
    create Books: { ref Book }
  )");
  if (!ddl.ok()) {
    std::fprintf(stderr, "DDL failed: %s\n", ddl.status().ToString().c_str());
    return 1;
  }

  // 2. Load a few objects through the store API.
  auto pub = [&](const char* name, const char* city) {
    return *db.store().Create(
        "Publisher", Value::Tuple({"name", "city"},
                                  {Value::Str(name), Value::Str(city)},
                                  "Publisher"));
  };
  Oid north = pub("Northern Press", "Madison");
  Oid coast = pub("Coastal Books", "Portland");
  auto author = [](const char* name, int64_t born) {
    return Value::Tuple({"name", "born"},
                        {Value::Str(name), Value::Int(born)}, "Author");
  };
  auto book = [&](const char* title, int64_t year,
                  std::vector<ValuePtr> authors, Oid publisher) {
    return *db.store().Create(
        "Book",
        Value::Tuple({"title", "year", "authors", "publisher"},
                     {Value::Str(title), Value::Int(year),
                      Value::SetOf(authors), Value::RefTo(publisher)},
                     "Book"));
  };
  std::vector<ValuePtr> books;
  books.push_back(Value::RefTo(
      book("Query Algebras", 1990, {author("Vandenberg", 1963)}, north)));
  books.push_back(Value::RefTo(book(
      "Complex Objects", 1991,
      {author("Vandenberg", 1963), author("DeWitt", 1948)}, north)));
  books.push_back(Value::RefTo(
      book("Sets And Arrays", 1989, {author("Codd", 1923)}, coast)));
  if (auto s = db.SetNamed("Books", Value::SetOf(books)); !s.ok()) return 1;

  // 3. Query in EXCESS: titles of post-1989 books from Madison publishers.
  auto result = session.Execute(R"(
    retrieve (Books.title)
    where Books.year >= 1990 and Books.publisher.city = "Madison"
  )");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("EXCESS result:  %s\n", (*result)->ToString().c_str());

  // 4. The same query built directly in the algebra.
  using namespace alg;  // NOLINT(build/namespaces)
  ExprPtr plan = SetApply(
      TupExtract("title", Input()),
      SetApply(Comp(Predicate::And(
                        Ge(TupExtract("year", Input()), IntLit(1990)),
                        Eq(TupExtract("city",
                                      Deref(TupExtract("publisher", Input()))),
                           StrLit("Madison"))),
                    Input()),
               SetApply(Deref(Input()), Var("Books"))));
  Evaluator ev(&db);
  std::printf("algebra result: %s\n", (*ev.Eval(plan))->ToString().c_str());

  // 5. Let the optimizer at it and show what it did.
  Planner planner(&db);
  ExprPtr best = *planner.Optimize(plan);
  std::printf("\ninitial plan:\n%s", plan->ToTreeString().c_str());
  std::printf("\noptimized plan:\n%s", best->ToTreeString().c_str());
  std::printf("\nrules fired:");
  for (const auto& r : planner.heuristic_trace()) std::printf(" %s", r.c_str());
  std::printf("\noptimized result: %s\n",
              (*ev.Eval(best))->ToString().c_str());
  return 0;
}
