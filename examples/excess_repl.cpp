// An interactive EXCESS shell over the Figure 1 university database.
// Statements are executed as typed; `\plan <retrieve...>` shows the
// translated and optimized trees instead of running the query.
//
//   $ build/examples/excess_repl
//   excess> retrieve (Employees.dept.name) where Employees.city = "city_0"
//   excess> \plan retrieve unique (Employees.jobtitle)
//   excess> \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "core/planner.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "university/university.h"

using namespace excess;  // NOLINT(build/namespaces) — example code

int main() {
  Database db;
  UniversityParams params;
  params.num_employees = 50;
  params.num_students = 30;
  if (!BuildUniversity(&db, params).ok()) {
    std::fprintf(stderr, "failed to build the demo database\n");
    return 1;
  }
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);

  std::printf(
      "EXCESS shell over the Figure 1 university database\n"
      "(%d employees, %d students; objects: Employees, Students,\n"
      " Departments, TopTen). Commands: \\plan <query>, \\schema <type>,\n"
      " \\objects, \\quit.\n\n",
      params.num_employees, params.num_students);

  std::string line;
  while (true) {
    std::printf("excess> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;

    if (line == "\\objects") {
      for (const auto& name : db.NamedObjectNames()) {
        auto obj = db.GetNamed(name);
        std::printf("  %-14s : %s\n", name.c_str(),
                    (*obj)->schema->ToString().c_str());
      }
      continue;
    }
    if (line.rfind("\\schema ", 0) == 0) {
      std::string type = line.substr(8);
      auto s = db.catalog().EffectiveSchema(type);
      if (s.ok()) {
        std::printf("  %s\n", (*s)->ToString().c_str());
      } else {
        std::printf("  %s\n", s.status().ToString().c_str());
      }
      continue;
    }
    if (line.rfind("\\plan ", 0) == 0) {
      auto tree = session.Translate(line.substr(6));
      if (!tree.ok()) {
        std::printf("  %s\n", tree.status().ToString().c_str());
        continue;
      }
      std::printf("translated:\n%s", (*tree)->ToTreeString().c_str());
      Planner planner(&db);
      auto best = planner.Optimize(*tree);
      if (best.ok()) {
        std::printf("optimized:\n%s", (*best)->ToTreeString().c_str());
        std::printf("rules:");
        for (const auto& r : planner.heuristic_trace()) {
          std::printf(" %s", r.c_str());
        }
        std::printf("\n");
      }
      continue;
    }

    auto result = session.Execute(line);
    if (!result.ok()) {
      std::printf("  %s\n", result.status().ToString().c_str());
      continue;
    }
    if (*result == nullptr) {
      std::printf("  ok\n");
      continue;
    }
    std::string s = (*result)->ToString();
    if (s.size() > 2000) s = s.substr(0, 2000) + " ...";
    std::printf("  %s\n", s.c_str());
  }
  return 0;
}
