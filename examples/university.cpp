// The paper's running example end to end: the Figure 1 university
// database, every query from §2.2, §3.3 and §5 executed through the EXCESS
// session, with results printed.

#include <cstdio>

#include "excess/session.h"
#include "methods/registry.h"
#include "university/university.h"

using namespace excess;  // NOLINT(build/namespaces) — example code

namespace {

void RunQuery(Session* session, const char* title, const char* query) {
  std::printf("--- %s ---\n%s\n", title, query);
  auto r = session->Execute(query);
  if (!r.ok()) {
    std::printf("  ERROR: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::string s = (*r)->ToString();
  if (s.size() > 400) s = s.substr(0, 400) + " ...";
  std::printf("  => %s\n\n", s.c_str());
}

}  // namespace

int main() {
  Database db;
  UniversityParams params;
  params.num_departments = 6;
  params.num_employees = 25;
  params.num_students = 15;
  params.num_floors = 3;
  if (!BuildUniversity(&db, params).ok()) {
    std::fprintf(stderr, "failed to build the university database\n");
    return 1;
  }
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);

  std::printf("University database (Figure 1): %d departments, %d employees, "
              "%d students\n\n",
              params.num_departments, params.num_employees,
              params.num_students);

  RunQuery(&session, "§2.2: children of 2nd-floor employees",
           "range of E is Employees\n"
           "retrieve (C.name) from C in E.kids where E.dept.floor = 2");

  RunQuery(&session, "define the `age` virtual field (method on Person)",
           "define Person function age () returns int4 {\n"
           "  retrieve ((20000 - this.birthday) / 365) }\n"
           "retrieve ( count(Employees) )");

  RunQuery(&session,
           "§2.2: per-employee minimum kid age among same-floor employees",
           "range of EMP is Employees\n"
           "retrieve (EMP.name, min(E.kids.age from E in Employees\n"
           "                        where E.dept.floor = EMP.dept.floor))");

  RunQuery(&session, "§3.3 Example 1 (Figure 3): the 5th TopTen employee",
           "retrieve (TopTen[5].name, TopTen[5].salary)");

  RunQuery(&session,
           "§3.3 Example 2 (Figure 4): departments of city_0 employees",
           "retrieve (Employees.dept.name) "
           "where Employees.city = \"city_0\"");

  RunQuery(&session, "§5 Example 2 (Figures 9-11): names by division",
           "range of S is Students\n"
           "retrieve (S.name) by S.dept.division where S.dept.floor = 1");

  RunQuery(&session, "§4: the get_ssnum method",
           "define Employee function get_ssnum (kname: char[]) returns int4 {\n"
           "  retrieve (K.ssnum) from K in this.kids where K.name = kname }\n"
           "range of E is Employees\n"
           "retrieve (E.name, E.get_ssnum(\"person_1001\"))");

  RunQuery(&session, "multiset operators and `into`",
           "retrieve (Employees.salary) where Employees.salary >= 100000 "
           "into Rich\n"
           "retrieve ( count(Rich) )");

  RunQuery(&session, "arrays: slices and `last`",
           "retrieve (TopTen[8..last])");

  RunQuery(&session, "§5 Example 1 needs the advisor-as-name variant",
           "retrieve unique (Students.gpa) where Students.gpa >= 3.5");

  // §5 Example 1 proper, over the advisor-as-name database.
  Database db2;
  UniversityParams p2 = params;
  p2.advisor_as_name = true;
  if (!BuildUniversity(&db2, p2).ok()) return 1;
  MethodRegistry m2(&db2.catalog());
  Session s2(&db2, &m2);
  RunQuery(&s2, "§5 Example 1 (Figures 6-8): advisors by department",
           "range of S is Students, E is Employees\n"
           "retrieve unique (S.dept.name, E.name) by S.dept "
           "where S.advisor = E.name");

  return 0;
}
