// A tour of the transformation rules (§5 and the Appendix): starting from
// the paper's initial query trees, watch the rule engine derive the
// figures, then let the cost-based planner choose among alternatives.

#include <cstdio>

#include "bench/support.h"
#include "core/planner.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "obs/trace.h"

using namespace excess;         // NOLINT(build/namespaces) — example code
using namespace excess::bench;  // NOLINT(build/namespaces)

namespace {

/// Prints a recorded rewrite trace the way EXPLAIN (TRACE) renders it.
void PrintTrace(const obs::RewriteTrace& trace) {
  for (size_t i = 0; i < trace.steps().size(); ++i) {
    const obs::TraceStep& s = trace.steps()[i];
    std::printf("  %zu. [%s] %s", i + 1, s.phase.c_str(), s.rule.c_str());
    if (s.paper_id > 0) std::printf(" (paper rule %d)", s.paper_id);
    if (s.cost_before >= 0 && s.cost_after >= 0) {
      std::printf(": cost %.0f -> %.0f", s.cost_before, s.cost_after);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Database db;
  UniversityParams params;
  params.num_students = 60;
  params.num_departments = 15;
  params.num_employees = 40;
  if (!BuildUniversity(&db, params).ok()) return 1;

  std::printf("=== The rule catalog ===\n");
  RuleSet all = RuleSet::All();
  int directed = 0;
  for (const auto& r : all.rules()) directed += r.directed ? 1 : 0;
  std::printf("%zu rules registered (%d directed / %zu exploratory)\n",
              all.rules().size(), directed, all.rules().size() - directed);
  for (const auto& r : all.rules()) {
    std::printf("  [%2d] %-36s %s\n", r.paper_id, r.name.c_str(),
                r.directed ? "directed" : "exploratory");
  }

  std::printf("\n=== §5 Example 2: Figure 9 and its two derivations ===\n");
  ExprPtr fig9 = Fig9Plan(1);
  std::printf("\nFigure 9 (initial tree):\n%s", fig9->ToTreeString().c_str());

  Rewriter r15(&db, RuleSet::Only({"combine-set-applys"}));
  obs::RewriteTrace t15(&db, CostParams());
  r15.set_observer(&t15);
  ExprPtr fig10 = *r15.Rewrite(fig9);
  std::printf("\nFigure 10 (rule 15, %zu applications):\n%s",
              r15.applied().size(), fig10->ToTreeString().c_str());
  PrintTrace(t15);

  Rewriter r10(&db, RuleSet::Only({"selection-before-group"}));
  Rewriter r26(&db, RuleSet::Only({"push-enrichment-into-comp"},
                                  /*force_directed=*/true));
  obs::RewriteTrace t1026(&db, CostParams());
  r10.set_observer(&t1026);
  r26.set_observer(&t1026);
  ExprPtr fig11 = *r26.Rewrite(*r10.Rewrite(fig9));
  std::printf("\nFigure 11 (rules 10 + 26):\n%s",
              fig11->ToTreeString().c_str());
  PrintTrace(t1026);

  EvalStats s9;
  MustEval(&db, fig9, &s9);
  EvalStats s11;
  MustEval(&db, fig11, &s11);
  std::printf("\nDEREF count: fig9 = %lld, fig11 = %lld (the shared dept\n"
              "deref is now materialized once, inside the COMP)\n",
              static_cast<long long>(s9.derefs),
              static_cast<long long>(s11.derefs));

  std::printf("\n=== From EXCESS text to an optimized plan ===\n");
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);
  const char* q =
      "retrieve (Employees.dept.name) where Employees.city = \"city_0\"";
  std::printf("query: %s\n", q);
  ExprPtr raw = *session.Translate(q);
  std::printf("\ntranslated tree:\n%s", raw->ToTreeString().c_str());

  Planner::Options opts;
  opts.search_budget = 32;
  Planner planner(&db, opts);
  obs::RewriteTrace planner_trace(&db, opts.cost_params);
  planner.set_observer(&planner_trace);
  auto choices = *planner.Enumerate(raw);
  std::printf("\nrewrite trace (%zu steps):\n", planner_trace.steps().size());
  PrintTrace(planner_trace);
  std::printf("%zu plans considered; top three by estimated cost:\n",
              choices.size());
  for (size_t i = 0; i < choices.size() && i < 3; ++i) {
    std::printf("\n#%zu (est %.0f):\n%s", i + 1, choices[i].estimate.total,
                choices[i].plan->ToTreeString().c_str());
  }

  ValuePtr best = MustEval(&db, choices.front().plan);
  ValuePtr orig = MustEval(&db, raw);
  std::printf("\nbest plan matches the original: %s\n",
              best->Equals(*orig) ? "yes" : "NO");

  std::printf("\n=== The same view through EXPLAIN ANALYZE ===\n");
  auto explained = session.Execute(std::string("explain analyze (trace) ") + q);
  if (!explained.ok()) {
    std::printf("explain failed: %s\n",
                explained.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*explained)->as_string().c_str());
  auto report = session.last_explain();
  std::printf("programmatic: analyzed=%s result_occurrences=%lld "
              "trace_steps=%zu\n",
              report->analyzed ? "true" : "false",
              static_cast<long long>(report->result_occurrences),
              report->trace.size());
  return 0;
}
