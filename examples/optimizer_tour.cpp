// A tour of the transformation rules (§5 and the Appendix): starting from
// the paper's initial query trees, watch the rule engine derive the
// figures, then let the cost-based planner choose among alternatives.

#include <cstdio>

#include "bench/support.h"
#include "core/planner.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "excess/session.h"
#include "methods/registry.h"

using namespace excess;         // NOLINT(build/namespaces) — example code
using namespace excess::bench;  // NOLINT(build/namespaces)

int main() {
  Database db;
  UniversityParams params;
  params.num_students = 60;
  params.num_departments = 15;
  params.num_employees = 40;
  if (!BuildUniversity(&db, params).ok()) return 1;

  std::printf("=== The rule catalog ===\n");
  RuleSet all = RuleSet::All();
  int directed = 0;
  for (const auto& r : all.rules()) directed += r.directed ? 1 : 0;
  std::printf("%zu rules registered (%d directed / %zu exploratory)\n",
              all.rules().size(), directed, all.rules().size() - directed);
  for (const auto& r : all.rules()) {
    std::printf("  [%2d] %-36s %s\n", r.paper_id, r.name.c_str(),
                r.directed ? "directed" : "exploratory");
  }

  std::printf("\n=== §5 Example 2: Figure 9 and its two derivations ===\n");
  ExprPtr fig9 = Fig9Plan(1);
  std::printf("\nFigure 9 (initial tree):\n%s", fig9->ToTreeString().c_str());

  Rewriter r15(&db, RuleSet::Only({"combine-set-applys"}));
  ExprPtr fig10 = *r15.Rewrite(fig9);
  std::printf("\nFigure 10 (rule 15, %zu applications):\n%s",
              r15.applied().size(), fig10->ToTreeString().c_str());

  Rewriter r10(&db, RuleSet::Only({"selection-before-group"}));
  Rewriter r26(&db, RuleSet::Only({"push-enrichment-into-comp"},
                                  /*force_directed=*/true));
  ExprPtr fig11 = *r26.Rewrite(*r10.Rewrite(fig9));
  std::printf("\nFigure 11 (rules 10 + 26):\n%s",
              fig11->ToTreeString().c_str());

  EvalStats s9;
  MustEval(&db, fig9, &s9);
  EvalStats s11;
  MustEval(&db, fig11, &s11);
  std::printf("\nDEREF count: fig9 = %lld, fig11 = %lld (the shared dept\n"
              "deref is now materialized once, inside the COMP)\n",
              static_cast<long long>(s9.derefs),
              static_cast<long long>(s11.derefs));

  std::printf("\n=== From EXCESS text to an optimized plan ===\n");
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);
  const char* q =
      "retrieve (Employees.dept.name) where Employees.city = \"city_0\"";
  std::printf("query: %s\n", q);
  ExprPtr raw = *session.Translate(q);
  std::printf("\ntranslated tree:\n%s", raw->ToTreeString().c_str());

  Planner::Options opts;
  opts.search_budget = 32;
  Planner planner(&db, opts);
  auto choices = *planner.Enumerate(raw);
  std::printf("\nheuristic rules fired:");
  for (const auto& r : planner.heuristic_trace()) std::printf(" %s", r.c_str());
  std::printf("\n%zu plans considered; top three by estimated cost:\n",
              choices.size());
  for (size_t i = 0; i < choices.size() && i < 3; ++i) {
    std::printf("\n#%zu (est %.0f):\n%s", i + 1, choices[i].estimate.total,
                choices[i].plan->ToTreeString().c_str());
  }

  ValuePtr best = MustEval(&db, choices.front().plan);
  ValuePtr orig = MustEval(&db, raw);
  std::printf("\nbest plan matches the original: %s\n",
              best->Equals(*orig) ? "yes" : "NO");
  return 0;
}
