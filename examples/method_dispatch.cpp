// §4 walkthrough: overridden methods under multiple inheritance and the
// two algebraic dispatch strategies, with the generated plans printed.

#include <cstdio>

#include "core/builder.h"
#include "core/eval.h"
#include "methods/dispatch.h"
#include "methods/registry.h"
#include "university/university.h"

using namespace excess;       // NOLINT(build/namespaces) — example code
using namespace excess::alg;  // NOLINT(build/namespaces)

int main() {
  Database db;
  UniversityParams params;
  params.num_employees = 20;
  params.num_students = 20;
  if (!BuildUniversity(&db, params).ok()) return 1;
  if (!AddMixedPersonSet(&db, "P", 5, 4, 3, params).ok()) return 1;

  MethodRegistry methods(&db.catalog());
  // The paper's "boss" example: each type overrides the body.
  auto ok = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::abort();
    }
  };
  ok(methods.Define({"Person", "boss", {}, StringSchema(),
                     TupExtract("name", Input())}));
  ok(methods.Define(
      {"Student", "boss", {}, StringSchema(),
       TupExtract("name", Deref(TupExtract("advisor", Input())))}));
  ok(methods.Define(
      {"Employee", "boss", {}, StringSchema(),
       TupExtract("name", Deref(TupExtract("manager", Input())))}));

  std::printf("P is a { Person } holding 5 Person, 4 Student, 3 Employee\n");
  std::printf("values; boss() is overridden by both subtypes.\n\n");

  // Run-time dispatch resolution.
  for (const char* t : {"Person", "Student", "Employee"}) {
    auto def = methods.Dispatch(t, "boss");
    std::printf("dispatch(%s, boss) -> implementation on %s\n", t,
                (*def)->type_name.c_str());
  }

  DispatchPlanner planner(&db, &methods);

  std::printf("\n=== Strategy A: run-time switch table ===\n");
  ExprPtr switch_plan = *planner.SwitchTablePlan(Var("P"), "boss");
  std::printf("%s", switch_plan->ToTreeString().c_str());

  std::printf("\n=== Strategy B: the additive-union plan of Figure 5 ===\n");
  ExprPtr union_plan = *planner.UnionPlan(Var("P"), "Person", "boss");
  std::printf("%s", union_plan->ToTreeString().c_str());

  std::printf("\n=== Strategy B over type-extent indexes ===\n");
  ExprPtr extent_plan =
      *planner.UnionPlanOverExtents("P", "Person", "boss");
  std::printf("%s", extent_plan->ToTreeString().c_str());

  Evaluator ev(&db, &methods);
  ValuePtr a = *ev.Eval(switch_plan);
  ValuePtr b = *ev.Eval(union_plan);
  ValuePtr c = *ev.Eval(extent_plan);
  std::printf("\nall three strategies agree: %s\n",
              a->Equals(*b) && b->Equals(*c) ? "yes" : "NO");
  std::printf("result: %s\n", a->ToString().c_str());

  // The sharing optimization: a subtype without its own override shares
  // the supertype's scan ("only as many SET_APPLYs as there are distinct
  // method implementations").
  ok(db.catalog().DefineType("GradStudent", Schema::Tup({}), {"Student"}));
  auto impls = methods.DistinctImplementations("Person", "boss");
  std::printf("\ndistinct implementations for the Person hierarchy:\n");
  for (const auto& [owner, serves] : *impls) {
    std::printf("  body on %-9s serves:", owner.c_str());
    for (const auto& s : serves) std::printf(" %s", s.c_str());
    std::printf("\n");
  }
  return 0;
}
