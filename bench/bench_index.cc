// Secondary-index bench (BENCH_index.json): selective lookups on the
// largest university fixture, scan vs. index-aware plan. An equality probe
// on a unique deref-traversing key (Employees.ssnum) must come out at least
// 100x faster than the scan — the headline number docs/INDEXES.md quotes —
// and an ordered-index range probe rides along for the salary predicate.

#include <cstdio>
#include <cstdlib>

#include "bench/support.h"
#include "core/cost.h"
#include "obs/metrics.h"

namespace excess {
namespace bench {
namespace {

/// Scan shape the translator produces for
///   retrieve (E) from E in Employees where E.<field> <cmp> <lit>
/// (θ navigates through the ref; the element kept is the raw ref).
ExprPtr FieldSelect(const std::string& field, CmpOp cmp, int64_t lit) {
  return Select(Predicate::Atom(TupExtract(field, Deref(Input())), cmp,
                                IntLit(lit)),
                Var("Employees"));
}

/// Best-of-reps per-lookup milliseconds over `probes` distinct probe values
/// per rep (distinct targets defeat any warm-bucket luck).
double PerLookupMs(Database* db, const std::string& field, CmpOp cmp,
                   int64_t base_lit, int64_t stride, int probes,
                   bool index_aware, int64_t* occurrences) {
  CostParams params;
  std::vector<ExprPtr> plans;
  plans.reserve(probes);
  for (int i = 0; i < probes; ++i) {
    ExprPtr scan = FieldSelect(field, cmp, base_lit + i * stride);
    plans.push_back(index_aware ? LowerPhysical(scan, db, params) : scan);
  }
  *occurrences = 0;
  for (const auto& p : plans) *occurrences += MustEval(db, p)->TotalCount();
  double total = TimeMs([&] {
    for (const auto& p : plans) MustEval(db, p);
  });
  return total / probes;
}

void Run() {
  std::printf("=== Secondary indexes: selective lookups, scan vs probe ===\n");
  Database db;
  UniversityParams p;
  p.num_employees = 20000;  // the largest fixture any bench builds
  p.num_departments = 50;
  p.num_students = 1000;
  if (!BuildUniversity(&db, p).ok()) std::abort();

  if (!db.CreateIndex({"emp_ssnum", "Employees", {"ssnum"}, IndexKind::kHash})
           .ok() ||
      !db.CreateIndex(
             {"emp_salary", "Employees", {"salary"}, IndexKind::kOrdered})
           .ok()) {
    std::fprintf(stderr, "index creation failed\n");
    std::abort();
  }

  // The lowered equality plan must actually be the probe (the cost model
  // has 20000 reasons to prefer it) and must agree with the scan.
  CostParams params;
  ExprPtr eq_scan = FieldSelect("ssnum", CmpOp::kEq, 100000 + 12345);
  ExprPtr eq_probe = LowerPhysical(eq_scan, &db, params);
  if (eq_probe->kind() != OpKind::kIndexProbe) {
    std::fprintf(stderr, "equality plan did not lower to IDX_PROBE:\n%s\n",
                 eq_probe->ToTreeString().c_str());
    std::abort();
  }
  MustAgree(&db, eq_scan, eq_probe, "ssnum equality");
  ExprPtr rg_scan = FieldSelect("salary", CmpOp::kLt, 31000);
  ExprPtr rg_probe = LowerPhysical(rg_scan, &db, params);
  if (rg_probe->kind() != OpKind::kIndexProbe) {
    std::fprintf(stderr, "range plan did not lower to IDX_PROBE\n");
    std::abort();
  }
  MustAgree(&db, rg_scan, rg_probe, "salary range");

  // ssnum is unique (100000 + i): 64 distinct single-row lookups.
  int64_t occ_scan = 0, occ_probe = 0, occ_rs = 0, occ_rp = 0;
  double scan_ms = PerLookupMs(&db, "ssnum", CmpOp::kEq, 100000, 271, 64,
                               /*index_aware=*/false, &occ_scan);
  double probe_ms = PerLookupMs(&db, "ssnum", CmpOp::kEq, 100000, 271, 64,
                                /*index_aware=*/true, &occ_probe);
  // salary < 31000 keeps ~0.8% of employees: a selective ordered range.
  double rscan_ms = PerLookupMs(&db, "salary", CmpOp::kLt, 31000, 40, 16,
                                /*index_aware=*/false, &occ_rs);
  double rprobe_ms = PerLookupMs(&db, "salary", CmpOp::kLt, 31000, 40, 16,
                                 /*index_aware=*/true, &occ_rp);
  if (occ_scan != occ_probe || occ_rs != occ_rp) {
    std::fprintf(stderr, "scan/probe cardinality mismatch\n");
    std::abort();
  }

  double eq_speedup = scan_ms / probe_ms;
  double rg_speedup = rscan_ms / rprobe_ms;
  std::printf("%-12s | %12s %12s %9s | %6s\n", "lookup", "scan ms/op",
              "probe ms/op", "speedup", "rows");
  std::printf("%-12s | %12.4f %12.6f %9.1fx | %6lld\n", "ssnum =", scan_ms,
              probe_ms, eq_speedup, static_cast<long long>(occ_probe));
  std::printf("%-12s | %12.4f %12.6f %9.1fx | %6lld\n", "salary <", rscan_ms,
              rprobe_ms, rg_speedup, static_cast<long long>(occ_rp));
  std::printf("index.probes = %lld\n",
              static_cast<long long>(obs::MetricsRegistry::Global()
                                         .GetCounter("index.probes")
                                         ->value()));

  std::vector<BenchRow> rows;
  rows.push_back({"ssnum-eq-scan", occ_scan, scan_ms, 1.0});
  rows.push_back({"ssnum-eq-probe", occ_probe, probe_ms, eq_speedup});
  rows.push_back({"salary-range-scan", occ_rs, rscan_ms, 1.0});
  rows.push_back({"salary-range-probe", occ_rp, rprobe_ms, rg_speedup});
  WriteBenchJson("index", rows);
  WritePlanJson(&db, "index",
                {{"ssnum-eq-probe", eq_probe}, {"salary-range-probe",
                                                rg_probe}});

  // The acceptance bar: a selective equality probe beats the scan by >=100x
  // on this fixture. The margin in practice is thousands-fold; failing it
  // means index probing regressed to a scan.
  if (eq_speedup < 100.0) {
    std::fprintf(stderr, "FAIL: equality probe speedup %.1fx < 100x\n",
                 eq_speedup);
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
