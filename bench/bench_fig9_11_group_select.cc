// Figures 9-11 (§5 Example 2): the grouped selection
//   retrieve (S.name) by S.dept.division where S.dept.floor = k
// as the paper's three trees: the initial plan (Fig. 9), the rule-15
// collapse (Fig. 10), and the rule 10 + rule 26 alternative (Fig. 11) that
// pushes the selection ahead of grouping and materializes the shared
// DEREF(dept) once. Also demonstrates that the rule engine itself derives
// Figure 11 from Figure 9.

#include <cstdio>

#include "bench/support.h"
#include "core/planner.h"
#include "core/rewriter.h"
#include "core/rules.h"

namespace excess {
namespace bench {
namespace {

void Sweep(int num_students, int num_floors, std::vector<BenchRow>* rows) {
  // selectivity = 1/num_floors (students are spread uniformly).
  Database db;
  UniversityParams p;
  p.num_students = num_students;
  p.num_departments = 15;  // every division has every floor
  p.num_floors = num_floors;
  if (!BuildUniversity(&db, p).ok()) std::abort();

  ExprPtr fig9 = Fig9Plan(1);
  ExprPtr fig10 = Fig10Plan(1);
  ExprPtr fig11 = Fig11Plan(1);
  // Fig. 9/10 vs Fig. 11 agree modulo selection-emptied groups (the rule-10
  // caveat); with every division populated on floor 1 they agree exactly,
  // which MustAgree verifies after normalization.
  ValuePtr v9 = DropEmptyGroups(MustEval(&db, fig9));
  ValuePtr v10 = DropEmptyGroups(MustEval(&db, fig10));
  ValuePtr v11 = DropEmptyGroups(MustEval(&db, fig11));
  if (!v9->Equals(*v10) || !v10->Equals(*v11)) {
    std::fprintf(stderr, "fig9/10/11 disagree\n");
    std::abort();
  }

  // What the system actually runs: the planner's pick for the initial
  // (parser-style) tree. With cheap in-memory derefs it pushes the
  // selection ahead of grouping WITHOUT the rule-26 enrichment — the
  // TUP_CAT materialization costs more than the deref it saves here, which
  // is why the raw Fig. 11 tree measures slower than Fig. 9 on this
  // fixture. The JSON speedup column is therefore "this hand-built tree's
  // time over the planner-picked plan's": every row ≥ 1.0 means the
  // optimizer never picks a measured regression against any figure tree.
  Planner planner(&db);
  auto planned = planner.Optimize(fig9);
  if (!planned.ok()) std::abort();
  ValuePtr vp = DropEmptyGroups(MustEval(&db, *planned));
  if (!vp->Equals(*v9)) {
    std::fprintf(stderr, "planner-picked plan disagrees with fig9\n");
    std::abort();
  }

  EvalStats s9;
  MustEval(&db, fig9, &s9);
  EvalStats s10;
  MustEval(&db, fig10, &s10);
  EvalStats s11;
  MustEval(&db, fig11, &s11);
  EvalStats sp;
  MustEval(&db, *planned, &sp);
  double t9 = TimeMs([&] { MustEval(&db, fig9); });
  double t10 = TimeMs([&] { MustEval(&db, fig10); });
  double t11 = TimeMs([&] { MustEval(&db, fig11); });
  double tp = TimeMs([&] { MustEval(&db, *planned); });
  std::printf(
      "%8d %6.2f%% | %9.2f %9.2f %9.2f %9.2f | %9lld %9lld %9lld | %11lld "
      "%11lld\n",
      num_students, 100.0 / num_floors, t9, t10, t11, tp,
      static_cast<long long>(s9.derefs), static_cast<long long>(s10.derefs),
      static_cast<long long>(s11.derefs),
      static_cast<long long>(s9.OccurrencesOf(OpKind::kGroup)),
      static_cast<long long>(s11.OccurrencesOf(OpKind::kGroup)));
  for (double t : {t9, t10, t11}) {
    if (t / tp < 1.0) {
      std::printf("  SHAPE VIOLATION: the planner-picked plan (%.2f ms) "
                  "loses to a hand-built figure tree (%.2f ms)\n", tp, t);
    }
  }
  std::string suffix =
      "-s" + std::to_string(num_students) + "-f" + std::to_string(num_floors);
  rows->push_back({"fig9-planned" + suffix, sp.OccurrencesOf(OpKind::kGroup),
                   tp, 1.0});
  rows->push_back(
      {"fig9" + suffix, s9.OccurrencesOf(OpKind::kGroup), t9, t9 / tp});
  rows->push_back(
      {"fig10" + suffix, s10.OccurrencesOf(OpKind::kGroup), t10, t10 / tp});
  rows->push_back(
      {"fig11" + suffix, s11.OccurrencesOf(OpKind::kGroup), t11, t11 / tp});
}

void Run() {
  std::printf("=== Figures 9-11: grouped selection, three plans ===\n\n");
  std::printf(
      "%8s %7s | %9s %9s %9s %9s | %9s %9s %9s | %11s %11s\n", "|S|", "sel",
      "fig9 ms", "fig10 ms", "fig11 ms", "plan ms", "drf f9", "drf f10",
      "drf f11", "GRP-occ f9", "GRP-occ f11");
  std::vector<BenchRow> rows;
  for (int n : {300, 1500, 6000}) {
    for (int floors : {2, 5, 10}) {
      Sweep(n, floors, &rows);
    }
  }
  WriteBenchJson("fig9_11", rows);

  std::printf(
      "\nShapes: fig10 removes one per-group scan (rule 15); fig11 halves\n"
      "the DEREF count (rule 26, the dept deref is materialized once) and\n"
      "its GRP consumes only the selected occurrences (rule 10), so its\n"
      "advantage grows as selectivity drops.\n");

  // --- The rule engine derives Figure 11 from Figure 9. -----------------
  std::printf("\n=== Deriving Fig. 11 from Fig. 9 with the rule engine ===\n");
  Database db;
  UniversityParams p;
  p.num_students = 60;
  p.num_departments = 15;
  if (!BuildUniversity(&db, p).ok()) std::abort();
  ExprPtr fig9 = Fig9Plan(1);
  // Archive the three figure trees as estimates-only EXPLAIN JSON for CI.
  WritePlanJson(&db, "fig9_11",
                {{"fig9", fig9},
                 {"fig10", Fig10Plan(1)},
                 {"fig11", Fig11Plan(1)}});
  Rewriter r10(&db, RuleSet::Only({"selection-before-group"}));
  Rewriter r15(&db, RuleSet::Only({"combine-set-applys"}));
  Rewriter r26(&db, RuleSet::Only({"push-enrichment-into-comp"},
                                  /*force_directed=*/true));
  // Fig. 9 --rule 15--> Fig. 10 (the paper's first transformation).
  auto fig10 = r15.Rewrite(fig9);
  if (!fig10.ok()) std::abort();
  std::printf("rule 15 applied %zu time(s); fig10:\n%s\n",
              r15.applied().size(), (*fig10)->ToTreeString().c_str());
  // Fig. 9 --rule 10--> --rule 26--> Fig. 11 (the alternative).
  auto mid = r10.Rewrite(fig9);
  if (!mid.ok()) std::abort();
  auto fig11 = r26.Rewrite(*mid);
  if (!fig11.ok()) std::abort();
  std::printf("rules 10+26 applied; fig11:\n%s\n",
              (*fig11)->ToTreeString().c_str());
  ValuePtr direct = DropEmptyGroups(MustEval(&db, Fig11Plan(1)));
  ValuePtr derived = DropEmptyGroups(MustEval(&db, *fig11));
  std::printf("derived tree equals the handwritten Fig. 11 result: %s\n",
              direct->Equals(*derived) ? "yes" : "NO");

  // --- The cost model decides when rule 26 pays (the paper: "it does not
  // always help"). With cheap in-memory derefs the planner keeps the
  // Fig. 10 shape; modelling an expensive DEREF (a materialization
  // subquery) makes it choose the enrichment plan.
  std::printf("\n=== Cost-based choice of rule 26 by deref cost ===\n");
  auto contains_enrichment = [](const ExprPtr& plan) {
    std::function<bool(const ExprPtr&)> walk = [&](const ExprPtr& e) {
      if (e->kind() == OpKind::kTupMake && e->name() == "$m") return true;
      for (const auto& c : e->children()) {
        if (walk(c)) return true;
      }
      if (e->sub() != nullptr && walk(e->sub())) return true;
      return false;
    };
    return walk(plan);
  };
  for (double deref_cost : {1.0, 4.0, 64.0}) {
    Planner::Options opts;
    opts.search_budget = 64;
    opts.cost_params.deref_cost = deref_cost;
    Planner planner(&db, opts);
    auto best = planner.Optimize(fig9);
    if (!best.ok()) std::abort();
    std::printf("  deref_cost=%5.0f -> best plan %s the rule-26 "
                "enrichment\n",
                deref_cost,
                contains_enrichment(*best) ? "USES" : "does not use");
  }
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
