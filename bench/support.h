#ifndef EXCESS_BENCH_SUPPORT_H_
#define EXCESS_BENCH_SUPPORT_H_

// Shared fixtures for the figure benches: the exact query plans of the
// paper's Figures 3-11 built with the public algebra API, plus small
// timing/reporting helpers. Each figure's plans are verified equal before
// being timed, so every number the benches print comes from plans that
// provably compute the same answer.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/eval.h"
#include "core/physical.h"
#include "obs/explain.h"
#include "university/university.h"

namespace excess {
namespace bench {

using namespace alg;  // NOLINT(build/namespaces)

/// Wall-clock milliseconds of `fn` (best of `reps`).
inline double TimeMs(const std::function<void()>& fn, int reps = 3) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count() /
        1e6;
    if (ms < best) best = ms;
  }
  return best;
}

/// Evaluates `plan` and aborts on error (benches run on verified plans).
inline ValuePtr MustEval(Database* db, const ExprPtr& plan,
                         EvalStats* stats = nullptr) {
  Evaluator ev(db);
  auto r = ev.Eval(plan);
  if (!r.ok()) {
    std::fprintf(stderr, "bench plan failed: %s\n%s\n",
                 r.status().ToString().c_str(), plan->ToTreeString().c_str());
    std::abort();
  }
  if (stats != nullptr) *stats = ev.stats();
  return *r;
}

// --- Example 1 (Figures 6-8): grouped unique join ---------------------------
// Query (§5 Ex. 1): unique (S.dept.name, E.name) by S.dept, where
// S.advisor = E.name, over the advisor-as-name database.

/// Dept name of the dereferenced student bound to `input`.
inline ExprPtr StudentDeptName(ExprPtr input) {
  return TupExtract("name", Deref(TupExtract("dept", std::move(input))));
}

/// Deref'd scans.
inline ExprPtr DerefScan(const std::string& name) {
  return SetApply(Deref(Input()), Var(name));
}

/// The projected result pair (dept_name, advisor) of a joined pair.
inline ExprPtr Ex1PairProjection() {
  return TupCat(
      TupMakeNamed("dept_name", StudentDeptName(TupExtract("_1", Input()))),
      TupMakeNamed("advisor",
                   TupExtract("name", TupExtract("_2", Input()))));
}

inline PredicatePtr Ex1JoinPred() {
  return Eq(TupExtract("advisor", TupExtract("_1", Input())),
            TupExtract("name", TupExtract("_2", Input())));
}

/// Figure 6: join, group, project within groups, dedupe within groups.
inline ExprPtr Fig6Plan() {
  ExprPtr join = SetApply(Comp(Ex1JoinPred(), Input()),
                          Cross(DerefScan("Students"), DerefScan("Employees")));
  ExprPtr grouped = Group(StudentDeptName(TupExtract("_1", Input())),
                          std::move(join));
  return SetApply(DupElim(SetApply(Ex1PairProjection(), Input())),
                  std::move(grouped));
}

/// Figure 7: project + dedupe pushed ahead of grouping (rule 8 + π/GRP).
inline ExprPtr Fig7Plan() {
  ExprPtr join = SetApply(Comp(Ex1JoinPred(), Input()),
                          Cross(DerefScan("Students"), DerefScan("Employees")));
  ExprPtr projected = SetApply(Ex1PairProjection(), std::move(join));
  return Group(TupExtract("dept_name", Input()),
               DupElim(std::move(projected)));
}

/// Figure 8: DE and π pushed below the join — DE now sees |S| + |E|
/// occurrences instead of |S| · |E|.
inline ExprPtr Fig8Plan() {
  ExprPtr s_proj = DupElim(SetApply(
      TupCat(TupMakeNamed("dept_name", StudentDeptName(Input())),
             TupMakeNamed("advisor", TupExtract("advisor", Input()))),
      DerefScan("Students")));
  ExprPtr e_names = DupElim(
      SetApply(TupExtract("name", Input()), DerefScan("Employees")));
  ExprPtr join = SetApply(
      Comp(Eq(TupExtract("advisor", TupExtract("_1", Input())),
              TupExtract("_2", Input())),
           Input()),
      Cross(std::move(s_proj), std::move(e_names)));
  // The S-side projected tuple IS the result pair; duplicates are already
  // gone on both sides, but equal pairs may arise from several employees
  // with equal names, hence the final per-stream DE.
  ExprPtr pairs = DupElim(
      SetApply(TupExtract("_1", Input()), std::move(join)));
  return Group(TupExtract("dept_name", Input()), std::move(pairs));
}

// --- Example 2 (Figures 9-11): grouped selection ------------------------------
// Query (§5 Ex. 2): S.name by S.dept.division where S.dept.floor = <floor>.

inline ExprPtr Ex2DeptOf(ExprPtr input) {
  return Deref(TupExtract("dept", std::move(input)));
}

/// Figure 9 (initial tree): group everything, then filter within groups,
/// then project within groups.
inline ExprPtr Fig9Plan(int64_t floor) {
  ExprPtr grouped =
      Group(TupExtract("division", Ex2DeptOf(Input())), DerefScan("Students"));
  ExprPtr filtered = SetApply(
      SetApply(Comp(Eq(TupExtract("floor", Ex2DeptOf(Input())),
                       IntLit(floor)),
                    Input()),
               Input()),
      std::move(grouped));
  return SetApply(SetApply(Project({"name"}, Input()), Input()),
                  std::move(filtered));
}

/// Figure 10: the two per-group scans collapsed by rule 15.
inline ExprPtr Fig10Plan(int64_t floor) {
  ExprPtr grouped =
      Group(TupExtract("division", Ex2DeptOf(Input())), DerefScan("Students"));
  return SetApply(
      SetApply(Project({"name"},
                       Comp(Eq(TupExtract("floor", Ex2DeptOf(Input())),
                               IntLit(floor)),
                            Input())),
               Input()),
      std::move(grouped));
}

/// Figure 11: selection pushed ahead of grouping (rule 10) and the shared
/// DEREF(dept) materialized once inside the COMP (rule 26).
inline ExprPtr Fig11Plan(int64_t floor) {
  ExprPtr enrich = TupCat(
      Input(), MakeExpr(OpKind::kTupMake, {Ex2DeptOf(Input())}, nullptr,
                        nullptr, nullptr, "$m", {}, "", 0, 0, 0, false, false,
                        false));
  ExprPtr filtered = SetApply(
      Comp(Eq(TupExtract("floor", TupExtract("$m", Input())), IntLit(floor)),
           std::move(enrich)),
      DerefScan("Students"));
  ExprPtr grouped = Group(
      TupExtract("division", TupExtract("$m", Input())), std::move(filtered));
  return SetApply(SetApply(Project({"name"}, Input()), Input()),
                  std::move(grouped));
}

// --- Figures 3/4 ----------------------------------------------------------------

inline ExprPtr Fig3Plan() {
  return Project({"name", "salary"}, Deref(ArrExtract(5, Var("TopTen"))));
}

/// The paper's four-stage SET_APPLY chain.
inline ExprPtr Fig4Plan(const std::string& city) {
  return SetApply(
      Project({"name"}, Input()),
      SetApply(Deref(TupExtract("dept", Input())),
               SetApply(Comp(Eq(TupExtract("city", Input()), StrLit(city)),
                             Input()),
                        SetApply(Deref(Input()), Var("Employees")))));
}

/// Figure 4 after rule-15 fusion: one scan.
inline ExprPtr Fig4FusedPlan(const std::string& city) {
  // COMP's predicate sees the COMP operand (the dereferenced employee) as
  // its INPUT, exactly as rule-15 composition produces.
  return SetApply(
      Project({"name"},
              Deref(TupExtract(
                  "dept", Comp(Eq(TupExtract("city", Input()), StrLit(city)),
                               Deref(Input()))))),
      Var("Employees"));
}

/// Strips empty member multisets — Figures 9/10 keep groups a per-group
/// selection emptied while Figure 11 never forms them (the rule-10 caveat
/// documented in DESIGN.md); comparisons across that rewrite normalize.
inline ValuePtr DropEmptyGroups(const ValuePtr& v) {
  if (!v->is_set()) return v;
  std::vector<SetEntry> kept;
  for (const auto& e : v->entries()) {
    if (e.value->is_set() && e.value->TotalCount() == 0) continue;
    kept.push_back(e);
  }
  return Value::SetOfCounted(std::move(kept));
}

/// Asserts two plans produce equal values on `db` (aborts otherwise).
inline void MustAgree(Database* db, const ExprPtr& a, const ExprPtr& b,
                      const char* what) {
  ValuePtr va = MustEval(db, a);
  ValuePtr vb = MustEval(db, b);
  if (!va->Equals(*vb)) {
    std::fprintf(stderr, "plan disagreement in %s:\n%s\nvs\n%s\n", what,
                 va->ToString().c_str(), vb->ToString().c_str());
    std::abort();
  }
}

// --- machine-readable results ------------------------------------------------

/// One result row of a figure bench: a plan variant with its occurrence
/// metric, wall time and speedup against the bench's baseline plan.
struct BenchRow {
  std::string plan;
  int64_t occurrences = 0;
  double wall_ms = 0;
  double speedup = 1;
};

/// Writes `rows` as BENCH_<name>.json in the working directory so the
/// figure benches can be consumed by scripts as well as read by eye.
inline void WriteBenchJson(const std::string& name,
                           const std::vector<BenchRow>& rows) {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"plan\": \"%s\", \"occurrences\": %lld, "
                 "\"wall_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 rows[i].plan.c_str(),
                 static_cast<long long>(rows[i].occurrences), rows[i].wall_ms,
                 rows[i].speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Writes each named plan's estimates-only EXPLAIN report (the JSON schema
/// of docs/OBSERVABILITY.md) as PLAN_<name>.json next to the bench's
/// BENCH_<name>.json, so CI archives the exact trees the numbers came from.
inline void WritePlanJson(
    Database* db, const std::string& name,
    const std::vector<std::pair<std::string, ExprPtr>>& plans) {
  std::string path = "PLAN_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"plans\": [\n", name.c_str());
  for (size_t i = 0; i < plans.size(); ++i) {
    obs::ExplainReport report =
        obs::ExplainPlan(db, plans[i].second, CostParams(), plans[i].first);
    std::fprintf(f, "    {\"plan\": \"%s\", \"report\": %s}%s\n",
                 plans[i].first.c_str(), report.ToJson().c_str(),
                 i + 1 < plans.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace excess

#endif  // EXCESS_BENCH_SUPPORT_H_
