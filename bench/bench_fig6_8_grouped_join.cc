// Figures 6-8 (§5 Example 1): the grouped unique join
//   retrieve unique (S.dept.name, E.name) by S.dept where S.advisor = E.name
// executed as the paper's three alternative trees:
//   Fig. 6 — join, group, project+dedupe within groups (parser-style tree);
//   Fig. 7 — DE pushed ahead of grouping (rule 8 + π/GRP exchange);
//   Fig. 8 — DE and π pushed below the join (rule 7 + relational pushdown).
// The headline claim measured here: in Fig. 8 duplicate elimination
// operates on |S| + |E| occurrences rather than |S| · |E|.

#include <cstdio>

#include "bench/support.h"
#include "core/parallel.h"
#include "core/planner.h"

namespace excess {
namespace bench {
namespace {

int64_t DeInputOccurrences(const EvalStats& s) {
  return s.OccurrencesOf(OpKind::kDupElim);
}

void Sweep(const char* title, int num_students, int num_employees,
           const std::vector<int>& dups, std::vector<BenchRow>* rows) {
  std::printf("%s\n", title);
  std::printf("%6s %6s %5s | %10s %10s %10s %10s | %12s %12s %12s\n", "|S|",
              "|E|", "dup", "fig6 ms", "fig7 ms", "fig8 ms", "hash ms",
              "DE-occ f6", "DE-occ f7", "DE-occ f8");
  for (int dup : dups) {
    Database db;
    UniversityParams p;
    p.num_students = num_students;
    p.num_employees = num_employees;
    p.advisor_as_name = true;
    p.advisor_pool = 10;
    p.duplication = dup;
    if (!BuildUniversity(&db, p).ok()) std::abort();

    ExprPtr fig6 = Fig6Plan();
    ExprPtr fig7 = Fig7Plan();
    ExprPtr fig8 = Fig8Plan();
    // Physical lowering of the parser-style tree: the select-over-cross
    // join becomes a HASH_JOIN, everything else stays put.
    ExprPtr fig6h = LowerPhysical(fig6);
    MustAgree(&db, fig6, fig7, "fig6 vs fig7");
    MustAgree(&db, fig7, fig8, "fig7 vs fig8");
    MustAgree(&db, fig6, fig6h, "fig6 vs fig6 lowered");

    EvalStats s6;
    MustEval(&db, fig6, &s6);
    EvalStats s7;
    MustEval(&db, fig7, &s7);
    EvalStats s8;
    MustEval(&db, fig8, &s8);
    EvalStats sh;
    MustEval(&db, fig6h, &sh);
    if (sh.InvocationsOf(OpKind::kHashJoin) == 0) {
      std::fprintf(stderr, "lowering failed to produce a HASH_JOIN:\n%s\n",
                   fig6h->ToTreeString().c_str());
      std::abort();
    }
    // The fig7 tree is an intermediate rewrite stage, not a plan the system
    // ever executes: one global DE over the full projected join output can
    // lose to fig6's per-group DEs on skewed group sizes. What matters is
    // the plan the optimizer picks when handed that tree — since the cost
    // model charges post-grouping pipelines for real group sizes
    // (CostEstimate::elem_cardinality), it steers past the raw fig7 shape.
    Planner planner(&db);
    auto fig7o = planner.Optimize(fig7);
    if (!fig7o.ok()) std::abort();
    MustAgree(&db, fig7, *fig7o, "fig7 vs fig7 optimized");

    double t6 = TimeMs([&] { MustEval(&db, fig6); });
    double t7 = TimeMs([&] { MustEval(&db, fig7); });
    double t8 = TimeMs([&] { MustEval(&db, fig8); });
    double th = TimeMs([&] { MustEval(&db, fig6h); });
    EvalStats s7o;
    MustEval(&db, *fig7o, &s7o);
    double t7o = TimeMs([&] { MustEval(&db, *fig7o); });
    std::printf(
        "%6d %6d %5d | %10.2f %10.2f %10.2f %10.2f | %12lld %12lld %12lld\n",
        num_students * dup, num_employees * dup, dup, t6, t7, t8, th,
        static_cast<long long>(DeInputOccurrences(s6)),
        static_cast<long long>(DeInputOccurrences(s7)),
        static_cast<long long>(DeInputOccurrences(s8)));
    std::printf("%6s %6s %5s | raw fig7 %.2f ms -> planner-picked %.2f ms\n",
                "", "", "", t7, t7o);
    std::string suffix = "-s" + std::to_string(num_students * dup) + "-e" +
                         std::to_string(num_employees * dup);
    rows->push_back({"fig6" + suffix, DeInputOccurrences(s6), t6, 1.0});
    rows->push_back({"fig7" + suffix, DeInputOccurrences(s7o), t7o, t6 / t7o});
    rows->push_back({"fig8" + suffix, DeInputOccurrences(s8), t8, t6 / t8});
    rows->push_back({"fig6-hash" + suffix,
                     sh.OccurrencesOf(OpKind::kHashJoin), th, t6 / th});
  }
  std::printf("\n");
}

void Run() {
  std::printf("=== Figures 6-8: grouped unique join, three plans ===\n\n");
  std::vector<BenchRow> rows;
  Sweep("--- duplication-factor sweep (|S|=120, |E|=60 distinct) ---", 120,
        60, {1, 2, 4, 8}, &rows);
  Sweep("--- size sweep at duplication 4 ---", 60, 30, {4}, &rows);
  Sweep("--- size sweep at duplication 4 (larger) ---", 240, 120, {4}, &rows);

  // Headline for the physical layer: on the largest fixture the hash join
  // must beat the select-over-cross baseline by at least 5x while producing
  // the verified-equal answer (MustAgree above).
  {
    Database big;
    UniversityParams p;
    p.num_students = 480;
    p.num_employees = 240;
    p.advisor_as_name = true;
    p.advisor_pool = 10;
    p.duplication = 4;
    if (!BuildUniversity(&big, p).ok()) std::abort();
    ExprPtr fig6 = Fig6Plan();
    ExprPtr fig6h = LowerPhysical(fig6);
    MustAgree(&big, fig6, fig6h, "fig6 vs fig6 lowered (largest)");
    double t6 = TimeMs([&] { MustEval(&big, fig6); });
    double th = TimeMs([&] { MustEval(&big, fig6h); });
    std::printf("largest fixture (|S|=1920, |E|=960): select-over-cross "
                "%.2f ms, hash join %.2f ms, speedup %.1fx\n",
                t6, th, t6 / th);
    if (t6 / th < 5.0) {
      std::printf("  SHAPE VIOLATION: hash join should be at least 5x "
                  "faster here\n");
    }
    rows.push_back({"fig6-largest", 0, t6, 1.0});
    rows.push_back({"fig6-hash-largest", 0, th, t6 / th});

    // Parallel APPLY against the same fixture, with the evaluator's default
    // threshold (the decision a session would make). Pool size follows
    // EXCESS_THREADS; with a pool of 1 ShouldParallelize() never fires, so
    // the "parallel" evaluator runs the byte-identical serial path — timing
    // it separately would report timing noise as a speedup (or a phantom
    // regression), so the row states the parity outright.
    Evaluator serial(&big);
    serial.set_parallel_enabled(false);
    auto rs = serial.Eval(fig6h);
    Evaluator par(&big);
    auto rp = par.Eval(fig6h);
    if (!rs.ok() || !rp.ok() || !(*rs)->Equals(**rp)) {
      std::fprintf(stderr, "parallel/serial disagreement on fig6 hash plan\n");
      std::abort();
    }
    double ts = TimeMs([&] {
      Evaluator ev(&big);
      ev.set_parallel_enabled(false);
      if (!ev.Eval(fig6h).ok()) std::abort();
    });
    bool pool_engaged = WorkerPool::Instance().size() > 1;
    double tp = ts;
    if (pool_engaged) {
      tp = TimeMs([&] {
        Evaluator ev(&big);
        if (!ev.Eval(fig6h).ok()) std::abort();
      });
    }
    std::printf("parallel APPLY (EXCESS_THREADS pool of %d): serial %.2f ms, "
                "parallel %.2f ms, speedup %.2fx %s\n",
                WorkerPool::Instance().size(), ts, tp, ts / tp,
                pool_engaged ? "(results verified equal)"
                             : "(pool of 1: parallel path IS the serial "
                               "path; parity by definition)");
    rows.push_back({"fig6-hash-serial", 0, ts, 1.0});
    rows.push_back({"fig6-hash-parallel", 0, tp, ts / tp});
  }
  WriteBenchJson("fig6_8", rows);

  // The paper's qualitative claims, checked explicitly.
  Database db;
  UniversityParams p;
  p.num_students = 100;
  p.num_employees = 50;
  p.advisor_as_name = true;
  p.duplication = 3;
  if (!BuildUniversity(&db, p).ok()) std::abort();
  // Archive the three figure trees (plus the lowered hash-join form of the
  // parser-style tree) as estimates-only EXPLAIN JSON for CI.
  WritePlanJson(&db, "fig6_8",
                {{"fig6", Fig6Plan()},
                 {"fig7", Fig7Plan()},
                 {"fig8", Fig8Plan()},
                 {"fig6_hash", LowerPhysical(Fig6Plan())}});
  EvalStats s7;
  MustEval(&db, Fig7Plan(), &s7);
  EvalStats s8;
  MustEval(&db, Fig8Plan(), &s8);
  long long s = 100 * 3;
  long long e = 50 * 3;
  long long de7 = DeInputOccurrences(s7);
  long long de8 = DeInputOccurrences(s8);
  std::printf(
      "claim (§5): pushing DE below the join makes it consume |S|+|E| "
      "occurrences\n(plus the post-join residual) instead of the join "
      "output:\n");
  std::printf("  |S|+|E| = %lld;  fig8 DE occurrences = %lld "
              "(residual from the final dedupe: %lld)\n",
              s + e, de8, de8 - (s + e));
  std::printf("  fig7 DE occurrences = %lld (the full projected join "
              "output)\n", de7);
  std::printf("  ratio fig7/fig8 = %.1fx\n",
              static_cast<double>(de7) / static_cast<double>(de8));
  if (de8 >= de7) {
    std::printf("  SHAPE VIOLATION: fig8 DE should see far fewer occurrences\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
