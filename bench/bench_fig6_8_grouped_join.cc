// Figures 6-8 (§5 Example 1): the grouped unique join
//   retrieve unique (S.dept.name, E.name) by S.dept where S.advisor = E.name
// executed as the paper's three alternative trees:
//   Fig. 6 — join, group, project+dedupe within groups (parser-style tree);
//   Fig. 7 — DE pushed ahead of grouping (rule 8 + π/GRP exchange);
//   Fig. 8 — DE and π pushed below the join (rule 7 + relational pushdown).
// The headline claim measured here: in Fig. 8 duplicate elimination
// operates on |S| + |E| occurrences rather than |S| · |E|.

#include <cstdio>

#include "bench/support.h"

namespace excess {
namespace bench {
namespace {

int64_t DeInputOccurrences(const EvalStats& s) {
  return s.OccurrencesOf(OpKind::kDupElim);
}

void Sweep(const char* title, int num_students, int num_employees,
           const std::vector<int>& dups) {
  std::printf("%s\n", title);
  std::printf("%6s %6s %5s | %10s %10s %10s | %12s %12s %12s\n", "|S|", "|E|",
              "dup", "fig6 ms", "fig7 ms", "fig8 ms", "DE-occ f6",
              "DE-occ f7", "DE-occ f8");
  for (int dup : dups) {
    Database db;
    UniversityParams p;
    p.num_students = num_students;
    p.num_employees = num_employees;
    p.advisor_as_name = true;
    p.advisor_pool = 10;
    p.duplication = dup;
    if (!BuildUniversity(&db, p).ok()) std::abort();

    ExprPtr fig6 = Fig6Plan();
    ExprPtr fig7 = Fig7Plan();
    ExprPtr fig8 = Fig8Plan();
    MustAgree(&db, fig6, fig7, "fig6 vs fig7");
    MustAgree(&db, fig7, fig8, "fig7 vs fig8");

    EvalStats s6;
    MustEval(&db, fig6, &s6);
    EvalStats s7;
    MustEval(&db, fig7, &s7);
    EvalStats s8;
    MustEval(&db, fig8, &s8);
    double t6 = TimeMs([&] { MustEval(&db, fig6); });
    double t7 = TimeMs([&] { MustEval(&db, fig7); });
    double t8 = TimeMs([&] { MustEval(&db, fig8); });
    std::printf("%6d %6d %5d | %10.2f %10.2f %10.2f | %12lld %12lld %12lld\n",
                num_students * dup, num_employees * dup, dup, t6, t7, t8,
                static_cast<long long>(DeInputOccurrences(s6)),
                static_cast<long long>(DeInputOccurrences(s7)),
                static_cast<long long>(DeInputOccurrences(s8)));
  }
  std::printf("\n");
}

void Run() {
  std::printf("=== Figures 6-8: grouped unique join, three plans ===\n\n");
  Sweep("--- duplication-factor sweep (|S|=120, |E|=60 distinct) ---", 120,
        60, {1, 2, 4, 8});
  Sweep("--- size sweep at duplication 4 ---", 60, 30, {4});
  Sweep("--- size sweep at duplication 4 (larger) ---", 240, 120, {4});

  // The paper's qualitative claims, checked explicitly.
  Database db;
  UniversityParams p;
  p.num_students = 100;
  p.num_employees = 50;
  p.advisor_as_name = true;
  p.duplication = 3;
  if (!BuildUniversity(&db, p).ok()) std::abort();
  EvalStats s7;
  MustEval(&db, Fig7Plan(), &s7);
  EvalStats s8;
  MustEval(&db, Fig8Plan(), &s8);
  long long s = 100 * 3;
  long long e = 50 * 3;
  long long de7 = DeInputOccurrences(s7);
  long long de8 = DeInputOccurrences(s8);
  std::printf(
      "claim (§5): pushing DE below the join makes it consume |S|+|E| "
      "occurrences\n(plus the post-join residual) instead of the join "
      "output:\n");
  std::printf("  |S|+|E| = %lld;  fig8 DE occurrences = %lld "
              "(residual from the final dedupe: %lld)\n",
              s + e, de8, de8 - (s + e));
  std::printf("  fig7 DE occurrences = %lld (the full projected join "
              "output)\n", de7);
  std::printf("  ratio fig7/fig8 = %.1fx\n",
              static_cast<double>(de7) / static_cast<double>(de8));
  if (de8 >= de7) {
    std::printf("  SHAPE VIOLATION: fig8 DE should see far fewer occurrences\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
