// Figures 3 and 4 (§3.3): the paper's two worked algebraic queries,
// executed as written and (for Figure 4) after rule-15 fusion. Regenerates
// the figures as executable plans and reports how the chain's cost scales
// with |Employees|.

#include <cstdio>

#include "bench/support.h"

namespace excess {
namespace bench {
namespace {

void Run() {
  std::printf("=== Figure 3: retrieve (TopTen[5].name, TopTen[5].salary) ===\n");
  {
    Database db;
    UniversityParams p;
    p.num_employees = 100;
    if (!BuildUniversity(&db, p).ok()) std::abort();
    ExprPtr plan = Fig3Plan();
    std::printf("plan:\n%s", plan->ToTreeString().c_str());
    EvalStats stats;
    ValuePtr result = MustEval(&db, plan, &stats);
    std::printf("result: %s\n", result->ToString().c_str());
    std::printf("derefs: %lld (constant — one array extract, one deref)\n\n",
                static_cast<long long>(stats.derefs));
  }

  std::printf(
      "=== Figure 4: functional join, initial chain vs rule-15 fusion ===\n");
  std::printf("%10s %14s %14s %12s %12s %10s\n", "|E|", "chain ms",
              "fused ms", "chain scans", "fused scans", "|result|");
  for (int n : {200, 1000, 5000, 20000}) {
    Database db;
    UniversityParams p;
    p.num_employees = n;
    p.num_departments = 20;
    if (!BuildUniversity(&db, p).ok()) std::abort();
    ExprPtr chain = Fig4Plan("city_0");
    ExprPtr fused = Fig4FusedPlan("city_0");
    MustAgree(&db, chain, fused, "fig4 chain vs fused");

    EvalStats cs;
    ValuePtr r = MustEval(&db, chain, &cs);
    EvalStats fs;
    MustEval(&db, fused, &fs);
    double chain_ms = TimeMs([&] { MustEval(&db, chain); });
    double fused_ms = TimeMs([&] { MustEval(&db, fused); });
    std::printf("%10d %14.3f %14.3f %12lld %12lld %10lld\n", n, chain_ms,
                fused_ms,
                static_cast<long long>(cs.InvocationsOf(OpKind::kSetApply)),
                static_cast<long long>(fs.InvocationsOf(OpKind::kSetApply)),
                static_cast<long long>(r->TotalCount()));
  }
  std::printf(
      "\nShape check: the fused plan does the same work in one multiset\n"
      "scan instead of four; the paper presents the chain as the natural\n"
      "initial tree (Fig. 4) and fusion as the rule-15 rewrite (Fig. 10\n"
      "shows the same idea for Example 2).\n");

  // Archive the figure trees as estimates-only EXPLAIN JSON for CI.
  {
    Database db;
    UniversityParams p;
    p.num_employees = 1000;
    p.num_departments = 20;
    if (!BuildUniversity(&db, p).ok()) std::abort();
    WritePlanJson(&db, "fig3_4",
                  {{"fig3", Fig3Plan()},
                   {"fig4_chain", Fig4Plan("city_0")},
                   {"fig4_fused", Fig4FusedPlan("city_0")}});
  }
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
