// Per-rule micro-ablations (google-benchmark): for the key directed rules,
// measure the same query before and after the single rewrite. These are the
// Appendix's transformation rules turned into measurable deltas.

#include <benchmark/benchmark.h>

#include "bench/support.h"
#include "core/kernels.h"
#include "core/rewriter.h"
#include "core/rules.h"

namespace excess {
namespace bench {
namespace {

/// One database per size, shared across iterations.
Database* SharedDb(int employees) {
  static std::map<int, std::unique_ptr<Database>>* dbs =
      new std::map<int, std::unique_ptr<Database>>();
  auto it = dbs->find(employees);
  if (it == dbs->end()) {
    auto db = std::make_unique<Database>();
    UniversityParams p;
    p.num_employees = employees;
    p.num_students = employees;
    p.num_departments = 20;
    if (!BuildUniversity(db.get(), p).ok()) std::abort();
    it = dbs->emplace(employees, std::move(db)).first;
  }
  return it->second.get();
}

ExprPtr ApplyRule(Database* db, const std::string& rule, ExprPtr e) {
  Rewriter rw(db, RuleSet::Only({rule}));
  auto r = rw.Rewrite(std::move(e));
  if (!r.ok()) std::abort();
  return *r;
}

void RunPlan(::benchmark::State& state, Database* db, const ExprPtr& plan) {
  for (auto _ : state) {
    Evaluator ev(db);
    auto r = ev.Eval(plan);
    if (!r.ok()) std::abort();
    ::benchmark::DoNotOptimize(r.ValueOrDie());
  }
}

// --- Rule 15: combine successive SET_APPLYs -------------------------------
ExprPtr ChainedPlan() { return Fig4Plan("city_0"); }

void BM_Rule15_Before(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, ChainedPlan());
}
void BM_Rule15_After(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, ApplyRule(db, "combine-set-applys", ChainedPlan()));
}
BENCHMARK(BM_Rule15_Before)->Arg(1000)->Arg(8000);
BENCHMARK(BM_Rule15_After)->Arg(1000)->Arg(8000);

// --- Rule 5: eliminate cross product under DE ---------------------------
ExprPtr CrossUnderDePlan() {
  return DupElim(SetApply(
      TupExtract("city", Deref(TupExtract("_1", Input()))),
      Cross(Var("Employees"), Var("Students"))));
}

void BM_Rule5_Before(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, CrossUnderDePlan());
}
void BM_Rule5_After(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, ApplyRule(db, "eliminate-cross-under-de",
                               CrossUnderDePlan()));
}
BENCHMARK(BM_Rule5_Before)->Arg(300);
BENCHMARK(BM_Rule5_After)->Arg(300);

// --- Rule 8: DE before grouping -------------------------------------------
ExprPtr DeAfterGroupPlan() {
  // Group duplicated city values, dedupe within groups.
  ExprPtr cities =
      SetApply(TupExtract("city", Deref(Input())), Var("Employees"));
  return SetApply(DupElim(Input()),
                  Group(Input(), std::move(cities)));
}

void BM_Rule8_Before(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, DeAfterGroupPlan());
}
void BM_Rule8_After(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, ApplyRule(db, "de-before-group", DeAfterGroupPlan()));
}
BENCHMARK(BM_Rule8_Before)->Arg(8000);
BENCHMARK(BM_Rule8_After)->Arg(8000);

// --- Rule 19: extract through ARR_APPLY --------------------------------------
ExprPtr ExtractThroughMapPlan() {
  // Mapping DEREF over all ten elements, then extracting one: rule 19
  // rewrites this to a single deref.
  return TupExtract("name",
                    ArrExtract(3, ArrApply(Deref(Input()), Var("TopTen"))));
}

void BM_Rule19_Before(::benchmark::State& state) {
  Database* db = SharedDb(1000);
  RunPlan(state, db, ExtractThroughMapPlan());
}
void BM_Rule19_After(::benchmark::State& state) {
  Database* db = SharedDb(1000);
  RunPlan(state, db,
          ApplyRule(db, "extract-through-arrapply", ExtractThroughMapPlan()));
}
BENCHMARK(BM_Rule19_Before);
BENCHMARK(BM_Rule19_After);

// --- Rule 27: combine successive COMPs ----------------------------------------
ExprPtr StackedCompPlan() {
  return SetApply(
      Comp(Gt(TupExtract("salary", Input()), IntLit(50000)),
           Comp(Eq(TupExtract("city", Input()), StrLit("city_0")),
                Deref(Input()))),
      Var("Employees"));
}

void BM_Rule27_Before(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, StackedCompPlan());
}
void BM_Rule27_After(::benchmark::State& state) {
  Database* db = SharedDb(static_cast<int>(state.range(0)));
  RunPlan(state, db, ApplyRule(db, "combine-comps", StackedCompPlan()));
}
BENCHMARK(BM_Rule27_Before)->Arg(8000);
BENCHMARK(BM_Rule27_After)->Arg(8000);

// --- Hash-accelerated multiset kernels: DIFF / UNION / INTERSECT -----------
// Each probe of the other operand is an O(1) index lookup instead of a
// linear CountOf scan, so these should scale linearly in n (they were
// quadratic before the build-side index).
ValuePtr IntSet(int64_t n, int64_t offset) {
  std::vector<ValuePtr> occ;
  occ.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) occ.push_back(Value::Int(offset + i));
  return Value::SetOf(occ);
}

void RunKernel(::benchmark::State& state,
               Result<ValuePtr> (*kernel)(const ValuePtr&, const ValuePtr&,
                                          Governor*)) {
  int64_t n = state.range(0);
  ValuePtr a = IntSet(n, 0);
  ValuePtr b = IntSet(n, n / 2);  // half-overlapping
  for (auto _ : state) {
    auto r = kernel(a, b, nullptr);
    if (!r.ok()) std::abort();
    ::benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetComplexityN(n);
}

void BM_KernelDiff(::benchmark::State& state) {
  RunKernel(state, kernels::Diff);
}
void BM_KernelMaxUnion(::benchmark::State& state) {
  RunKernel(state, kernels::MaxUnion);
}
void BM_KernelMinIntersect(::benchmark::State& state) {
  RunKernel(state, kernels::MinIntersect);
}
BENCHMARK(BM_KernelDiff)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(::benchmark::oN);
BENCHMARK(BM_KernelMaxUnion)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(::benchmark::oN);
BENCHMARK(BM_KernelMinIntersect)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(::benchmark::oN);

// --- Physical lowering: equi-join as SELECT(CROSS) vs HASH_JOIN ------------
ExprPtr EquiJoinPlan(int64_t n) {
  // Half-overlapping integer sets joined on element equality.
  return SetApply(
      Comp(Eq(TupExtract("_1", Input()), TupExtract("_2", Input())), Input()),
      Cross(Const(IntSet(n, 0)), Const(IntSet(n, n / 2))));
}

void BM_JoinSelectCross(::benchmark::State& state) {
  Database db;
  RunPlan(state, &db, EquiJoinPlan(state.range(0)));
}
void BM_JoinHash(::benchmark::State& state) {
  Database db;
  RunPlan(state, &db, LowerPhysical(EquiJoinPlan(state.range(0))));
}
// The logical plan is quadratic (it materializes the cross product), so its
// sizes stay small; the hash join keeps scaling.
BENCHMARK(BM_JoinSelectCross)->Arg(256)->Arg(1024);
BENCHMARK(BM_JoinHash)->Arg(256)->Arg(1024)->Arg(16384);

// --- Heuristic rewrite itself: optimizer throughput -----------------------------
void BM_HeuristicRewrite(::benchmark::State& state) {
  Database* db = SharedDb(300);
  ExprPtr messy = DupElim(SetApply(
      Project({"name"}, Input()),
      SetApply(Deref(TupExtract("dept", Input())),
               SetApply(Comp(Eq(TupExtract("city", Input()),
                                StrLit("city_0")),
                             Input()),
                        SetApply(Deref(Input()), Var("Employees"))))));
  for (auto _ : state) {
    Rewriter rw(db, RuleSet::Heuristic());
    auto r = rw.Rewrite(messy);
    if (!r.ok()) std::abort();
    ::benchmark::DoNotOptimize(r.ValueOrDie());
  }
}
BENCHMARK(BM_HeuristicRewrite);

}  // namespace
}  // namespace bench
}  // namespace excess

BENCHMARK_MAIN();
