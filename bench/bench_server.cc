// Concurrent-session-server throughput and overload behavior.
//
// Four questions, each answered with a number in BENCH_server.json:
//
//  1. What does one connection sustain? A single client runs a ~1 ms
//     read statement back-to-back over a unix socket; the stmts/sec row
//     is the wire-protocol + dispatch + epoch-clone baseline.
//
//  2. Do readers scale? 8 and 64 clients run the same read-only workload
//     against a worker pool sized to the hardware. Snapshot-epoch reads
//     share nothing but an atomic epoch check, so on >= 4 hardware
//     threads the 8-client run must sustain >= 3x the 1-client rate (the
//     bar is skipped on smaller machines, where no parallel speedup
//     exists to measure).
//
//  3. Is overload shed, not absorbed? 32 clients hammer a server with 2
//     workers and a 4-deep admission queue. The bar: at least one
//     kResourceExhausted response carrying a retry-after hint, zero
//     transport hangs or crashes, and a fresh request succeeds within 2 s
//     of the burst ending (the queue drained; nothing wedged).
//
//  4. Does client death hurt anyone else? A fault mix kills a third of
//     its connections right after sending (dead-client cancellation
//     path); the surviving clients' error count must stay zero.
//
//  5. What do wire transactions cost? One client runs begin / append /
//     tokened-commit groups back-to-back against a durable store; the
//     commits/sec row prices the lease grant + WAL commit marker + token
//     journaling on top of the wire baseline.
//
//  6. How fast is kill-mid-commit recovery? Clients send a tokened commit
//     and die without reading the ack; the row reports how long a fresh
//     connection takes to get a decisive answer for the same token
//     (resolved-by-token or a typed error) and asserts the exactly-once
//     contract: the group's value is durable iff the retried commit says
//     so — never twice, never half.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace excess {
namespace server {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNums = 60;  // 3600-pair self-join => ~10 ms per read
const char* kReadStmt =
    "retrieve ( count(p from x in Nums, p in Nums where x = p) )";

std::string SockPath() {
  return "/tmp/exbench_srv_" + std::to_string(::getpid()) + ".sock";
}

void Seed(Server* server) {
  if (!server->ExecuteLocal("create Nums: { int4 }").ok()) std::abort();
  std::string stmt = "append all {1";
  for (int i = 2; i <= kNums; ++i) stmt += ", " + std::to_string(i);
  stmt += "} to Nums";
  if (!server->ExecuteLocal(stmt).ok()) std::abort();
}

struct PhaseResult {
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t errors = 0;  // transport failures or unexpected statuses
  double wall_s = 0;
  double stmts_per_sec() const { return wall_s > 0 ? ok / wall_s : 0; }
};

/// `clients` connections each run kReadStmt back-to-back for `seconds`.
PhaseResult ReadPhase(const std::string& sock, int clients, double seconds) {
  PhaseResult out;
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> errors{0};
  std::atomic<bool> stop{false};
  auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      auto client = Client::ConnectUnix(sock, /*timeout_ms=*/20'000);
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = client->Execute(kReadStmt, /*deadline_ms=*/20'000);
        if (!r.ok()) {
          errors.fetch_add(1);
          return;
        }
        if (r->code == StatusCode::kOk) {
          ok.fetch_add(1);
        } else if (r->code == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
          // Honor the admission controller's hint (capped so the phase
          // still ends on time) instead of hot-spinning on rejections.
          int64_t backoff = std::min<int64_t>(r->retry_after_ms, 50);
          if (backoff > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
          }
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  out.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.ok = ok.load();
  out.shed = shed.load();
  out.errors = errors.load();
  return out;
}

/// One client runs begin / append / tokened-commit groups back-to-back
/// for `seconds`; `ok` counts committed groups.
PhaseResult TxnPhase(const std::string& sock, double seconds) {
  PhaseResult out;
  auto start = Clock::now();
  auto deadline = start + std::chrono::duration<double>(seconds);
  auto client = Client::ConnectUnix(sock, /*timeout_ms=*/20'000);
  if (!client.ok()) {
    out.errors = 1;
    return out;
  }
  int64_t i = 0;
  while (Clock::now() < deadline) {
    ++i;
    std::string token = "bench-" + std::to_string(i);
    auto begun = client->Execute("begin", /*deadline_ms=*/20'000);
    if (!begun.ok() || begun->code != StatusCode::kOk) {
      ++out.errors;
      break;
    }
    auto appended = client->Execute("append " + std::to_string(i) + " to T",
                                    /*deadline_ms=*/20'000);
    if (!appended.ok() || appended->code != StatusCode::kOk) {
      ++out.errors;
      break;
    }
    auto committed = client->Execute("commit", /*deadline_ms=*/20'000,
                                     /*max_bytes=*/0, /*max_occurrences=*/0,
                                     token);
    if (!committed.ok() || committed->code != StatusCode::kOk) {
      ++out.errors;
      break;
    }
    ++out.ok;
  }
  out.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

struct KillCommitResult {
  int64_t kills = 0;
  int64_t resolved = 0;    // retried commit answered resolved-by-token
  int64_t aborted = 0;     // retried commit got a typed "no such txn" error
  int64_t violations = 0;  // exactly-once broken, or no decisive answer
  double avg_recovery_ms = 0;
  double max_recovery_ms = 0;
};

/// `kills` clients each stage a group, fire the tokened commit, and die
/// without reading the ack. A fresh connection then retries the same
/// token until the answer is decisive; the recovered value count must
/// match what that answer claims.
KillCommitResult KillMidCommitPhase(const std::string& sock, int kills) {
  KillCommitResult out;
  double total_ms = 0;
  for (int k = 0; k < kills; ++k) {
    const int value = 100'000 + k;
    const std::string token = "kill-" + std::to_string(k);
    {
      auto doomed = Client::ConnectUnix(sock, /*timeout_ms=*/5'000);
      if (!doomed.ok()) {
        ++out.violations;
        continue;
      }
      auto begun = doomed->Execute("begin", /*deadline_ms=*/10'000);
      if (!begun.ok() || begun->code != StatusCode::kOk) {
        ++out.violations;
        continue;
      }
      auto appended = doomed->Execute(
          "append " + std::to_string(value) + " to K", /*deadline_ms=*/10'000);
      if (!appended.ok() || appended->code != StatusCode::kOk) {
        ++out.violations;
        continue;
      }
      Request req;
      req.opcode = Opcode::kStatement;
      req.deadline_ms = 10'000;
      req.statement = "commit";
      req.token = token;
      (void)WriteFrame(doomed->fd(), EncodeRequest(req), 1'000);
      // Half the kills give the commit a head start (ack loss), half die
      // immediately (racing the dead-client cancellation path).
      if (k % 2 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
      doomed->Close();
    }
    ++out.kills;
    auto t0 = Clock::now();
    auto give_up = t0 + std::chrono::seconds(2);
    bool decisive = false;
    bool committed = false;
    auto retrier = Client::ConnectUnix(sock, /*timeout_ms=*/5'000);
    while (retrier.ok() && Clock::now() < give_up) {
      auto r = retrier->Execute("commit", /*deadline_ms=*/5'000,
                                /*max_bytes=*/0, /*max_occurrences=*/0, token);
      if (!r.ok()) break;
      if (r->code == StatusCode::kUnavailable) {
        // The dying connection still holds the lease; poll per its hint.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(std::max<uint32_t>(r->retry_after_ms, 1), 20)));
        continue;
      }
      decisive = true;
      committed = r->code == StatusCode::kOk;
      if (committed && !r->resolved_by_token) out.violations += 1;
      break;
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    if (!decisive) {
      ++out.violations;
      continue;
    }
    total_ms += ms;
    out.max_recovery_ms = std::max(out.max_recovery_ms, ms);
    if (committed) {
      ++out.resolved;
    } else {
      ++out.aborted;
    }
    // Exactly-once: the value is durable iff the retried commit said so.
    auto check = Client::ConnectUnix(sock, /*timeout_ms=*/5'000);
    if (check.ok()) {
      auto r = check->Execute("retrieve ( count(x from x in K where x = " +
                                  std::to_string(value) + ") )",
                              /*deadline_ms=*/10'000);
      std::string want = committed ? "1" : "0";
      if (!r.ok() || r->code != StatusCode::kOk || r->result != want) {
        ++out.violations;
      }
    } else {
      ++out.violations;
    }
  }
  int64_t decided = out.resolved + out.aborted;
  out.avg_recovery_ms = decided > 0 ? total_ms / decided : 0;
  return out;
}

}  // namespace

int Run() {
  const unsigned hw = std::thread::hardware_concurrency();

  // --- read throughput: 1 / 8 / 64 clients ----------------------------------
  std::string sock = SockPath();
  ServerOptions opts;
  opts.unix_path = sock;
  opts.queue_capacity = 256;  // throughput phases measure work, not shedding
  Server server(opts);
  Seed(&server);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "bench_server: Start failed\n");
    return 1;
  }
  PhaseResult c1 = ReadPhase(sock, 1, 2.0);
  PhaseResult c8 = ReadPhase(sock, 8, 2.0);
  PhaseResult c64 = ReadPhase(sock, 64, 2.0);
  server.Shutdown();
  double scaling = c1.ok > 0 ? c8.stmts_per_sec() / c1.stmts_per_sec() : 0;
  std::printf("read throughput:  1 client  %8.0f stmts/s  (%lld ok)\n",
              c1.stmts_per_sec(), static_cast<long long>(c1.ok));
  std::printf("                  8 clients %8.0f stmts/s  (%.2fx)\n",
              c8.stmts_per_sec(), scaling);
  std::printf("                 64 clients %8.0f stmts/s\n",
              c64.stmts_per_sec());

  // --- overload: tiny pool, deep demand --------------------------------------
  std::string sock2 = sock + "2";
  ServerOptions small;
  small.unix_path = sock2;
  small.workers = 2;
  small.queue_capacity = 4;
  Server overload(small);
  Seed(&overload);
  if (!overload.Start().ok()) {
    std::fprintf(stderr, "bench_server: overload Start failed\n");
    return 1;
  }
  PhaseResult burst = ReadPhase(sock2, 32, 1.5);
  std::printf("overload burst:  %lld ok, %lld shed, %lld errors\n",
              static_cast<long long>(burst.ok),
              static_cast<long long>(burst.shed),
              static_cast<long long>(burst.errors));
  // Recovery: the queue must drain and a fresh request succeed promptly.
  bool recovered = false;
  {
    auto deadline = Clock::now() + std::chrono::seconds(2);
    auto client = Client::ConnectUnix(sock2, /*timeout_ms=*/5'000);
    while (client.ok() && Clock::now() < deadline) {
      auto r = client->Execute(kReadStmt, /*deadline_ms=*/5'000);
      if (r.ok() && r->code == StatusCode::kOk) {
        recovered = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // --- fault mix: dying clients beside healthy ones --------------------------
  std::atomic<int64_t> survivor_errors{0};
  std::atomic<int64_t> kills{0};
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
      threads.emplace_back([&] {  // healthy clients
        auto client = Client::ConnectUnix(sock2, /*timeout_ms=*/20'000);
        if (!client.ok()) {
          survivor_errors.fetch_add(1);
          return;
        }
        while (!stop.load()) {
          auto r = client->Execute(kReadStmt, /*deadline_ms=*/20'000);
          if (!r.ok()) {
            survivor_errors.fetch_add(1);
            return;
          }
          if (r->code != StatusCode::kOk &&
              r->code != StatusCode::kResourceExhausted) {
            survivor_errors.fetch_add(1);
            return;
          }
        }
      });
    }
    threads.emplace_back([&] {  // serial killer
      while (!stop.load()) {
        auto doomed = Client::ConnectUnix(sock2, /*timeout_ms=*/5'000);
        if (!doomed.ok()) break;
        Request req;
        req.opcode = Opcode::kStatement;
        req.deadline_ms = 10'000;
        req.statement = kReadStmt;
        (void)WriteFrame(doomed->fd(), EncodeRequest(req), 1'000);
        doomed->Close();  // die without reading the response
        kills.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1'500));
    stop.store(true);
    for (auto& t : threads) t.join();
  }
  overload.Shutdown();
  std::printf("fault mix:       %lld client deaths, %lld survivor errors\n",
              static_cast<long long>(kills.load()),
              static_cast<long long>(survivor_errors.load()));

  // --- wire transactions: commit throughput, kill-mid-commit recovery --------
  std::string sock3 = sock + "3";
  std::string db3 = "/tmp/exbench_txn_" + std::to_string(::getpid()) + ".db";
  std::filesystem::remove_all(db3);
  ServerOptions txn_opts;
  txn_opts.unix_path = sock3;
  txn_opts.db_path = db3;
  Server txn_server(txn_opts);
  if (!txn_server.ExecuteLocal("create T: { int4 }").ok() ||
      !txn_server.ExecuteLocal("create K: { int4 }").ok()) {
    std::fprintf(stderr, "bench_server: txn seed failed\n");
    return 1;
  }
  if (!txn_server.Start().ok()) {
    std::fprintf(stderr, "bench_server: txn Start failed\n");
    return 1;
  }
  PhaseResult txn = TxnPhase(sock3, 2.0);
  KillCommitResult killc = KillMidCommitPhase(sock3, 16);
  txn_server.Shutdown();
  std::filesystem::remove_all(db3);
  std::printf("txn commits:     %8.0f commits/s  (%lld groups, %lld errors)\n",
              txn.stmts_per_sec(), static_cast<long long>(txn.ok),
              static_cast<long long>(txn.errors));
  std::printf(
      "kill mid-commit: %lld kills, %lld resolved, %lld aborted, "
      "%lld violations, recovery avg %.1f ms max %.1f ms\n",
      static_cast<long long>(killc.kills),
      static_cast<long long>(killc.resolved),
      static_cast<long long>(killc.aborted),
      static_cast<long long>(killc.violations), killc.avg_recovery_ms,
      killc.max_recovery_ms);

  // --- report + bars ----------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_server.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"server\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"rows\": [\n");
    auto row = [&](const char* phase, const PhaseResult& r, bool last) {
      std::fprintf(f,
                   "    {\"phase\": \"%s\", \"stmts_per_sec\": %.1f, "
                   "\"ok\": %lld, \"shed\": %lld, \"errors\": %lld}%s\n",
                   phase, r.stmts_per_sec(), static_cast<long long>(r.ok),
                   static_cast<long long>(r.shed),
                   static_cast<long long>(r.errors), last ? "" : ",");
    };
    row("read_1_client", c1, false);
    row("read_8_clients", c8, false);
    row("read_64_clients", c64, false);
    row("overload_32_clients", burst, false);
    row("txn_commit_wire", txn, false);
    std::fprintf(f,
                 "    {\"phase\": \"kill_mid_commit\", \"kills\": %lld, "
                 "\"resolved_by_token\": %lld, \"aborted\": %lld, "
                 "\"violations\": %lld, \"recovery_avg_ms\": %.1f, "
                 "\"recovery_max_ms\": %.1f}\n",
                 static_cast<long long>(killc.kills),
                 static_cast<long long>(killc.resolved),
                 static_cast<long long>(killc.aborted),
                 static_cast<long long>(killc.violations),
                 killc.avg_recovery_ms, killc.max_recovery_ms);
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"txn_commits_per_sec\": %.1f,\n",
                 txn.stmts_per_sec());
    std::fprintf(f, "  \"scaling_8_vs_1\": %.2f,\n", scaling);
    std::fprintf(f, "  \"overload_sheds\": %lld,\n",
                 static_cast<long long>(burst.shed));
    std::fprintf(f, "  \"recovered_after_burst\": %s,\n",
                 recovered ? "true" : "false");
    std::fprintf(f, "  \"fault_mix_client_deaths\": %lld,\n",
                 static_cast<long long>(kills.load()));
    std::fprintf(f, "  \"fault_mix_survivor_errors\": %lld\n",
                 static_cast<long long>(survivor_errors.load()));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_server.json\n");
  }

  int rc = 0;
  if (c1.errors + c8.errors + c64.errors + burst.errors > 0) {
    std::fprintf(stderr, "FAIL: transport/statement errors during phases\n");
    rc = 1;
  }
  if (burst.shed == 0) {
    std::fprintf(stderr,
                 "FAIL: overload burst was never shed (expected "
                 "kResourceExhausted under a full queue)\n");
    rc = 1;
  }
  if (!recovered) {
    std::fprintf(stderr, "FAIL: no successful request within 2s of burst\n");
    rc = 1;
  }
  if (survivor_errors.load() > 0) {
    std::fprintf(stderr, "FAIL: client deaths disturbed healthy clients\n");
    rc = 1;
  }
  if (txn.ok == 0 || txn.errors > 0) {
    std::fprintf(stderr, "FAIL: wire-transaction phase committed %lld groups "
                 "with %lld errors\n", static_cast<long long>(txn.ok),
                 static_cast<long long>(txn.errors));
    rc = 1;
  }
  if (killc.violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld kill-mid-commit exactly-once violations\n",
                 static_cast<long long>(killc.violations));
    rc = 1;
  }
  // Parallel-scaling bar only where parallel hardware exists: a 1-core
  // container runs all workers on one CPU and no fan-out can pay off.
  if (hw >= 4 && scaling < 3.0) {
    std::fprintf(stderr, "FAIL: 8-client scaling %.2fx < 3x on %u threads\n",
                 scaling, hw);
    rc = 1;
  }
  return rc;
}

}  // namespace server
}  // namespace excess

int main() { return excess::server::Run(); }
