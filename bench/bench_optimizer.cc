// End-to-end optimizer evaluation (§6: the algebra and rules as the basis
// of an EXODUS-generated optimizer). For a suite of EXCESS queries over the
// Figure 1 database: translation, heuristic + cost-based optimization,
// estimated costs, planning time, and the realized execution speedup.

#include <cstdio>

#include "bench/support.h"
#include "core/planner.h"
#include "excess/session.h"
#include "methods/registry.h"

namespace excess {
namespace bench {
namespace {

struct QueryCase {
  const char* name;
  const char* source;
};

const QueryCase kSuite[] = {
    {"fig4-functional-join",
     "retrieve (Employees.dept.name) where Employees.city = \"city_0\""},
    {"selective-scan",
     "retrieve (Employees.name) where Employees.salary >= 140000"},
    {"grouped-division",
     "range of S is Students "
     "retrieve (S.name) by S.dept.division where S.dept.floor = 1"},
    {"unique-projection", "retrieve unique (Employees.jobtitle)"},
    {"kids-collapse",
     "range of E is Employees retrieve (C.name) from C in E.kids "
     "where E.dept.floor = 2"},
    {"join-two-vars",
     "range of S is Students, E is Employees "
     "retrieve (S.name, E.name) where S.advisor = E and "
     "E.salary >= 100000"},
    {"aggregate-per-employee",
     "range of E is Employees retrieve (E.name, count(E.kids))"},
    {"array-head", "retrieve (TopTen[1].salary, TopTen[2].salary)"},
};

void Run() {
  Database db;
  UniversityParams p;
  // Sized so the worst raw plan (the two-variable join's full cross
  // product) still finishes in seconds.
  p.num_employees = 300;
  p.num_students = 450;
  p.num_departments = 20;
  if (!BuildUniversity(&db, p).ok()) std::abort();
  MethodRegistry methods(&db.catalog());

  std::printf("=== Optimizer end-to-end (suite of EXCESS queries) ===\n\n");
  std::printf("%-24s | %10s %10s | %9s | %10s %10s %8s\n", "query",
              "est before", "est after", "plan ms", "raw ms", "opt ms",
              "speedup");

  for (const auto& q : kSuite) {
    Session session(&db, &methods);
    auto tree = session.Translate(q.source);
    if (!tree.ok()) {
      // Multi-statement inputs (with ranges) need full execution paths.
      Session s2(&db, &methods);
      // Split: execute everything but keep the final retrieve's tree by
      // running the ranges first.
      std::string src(q.source);
      size_t pos = src.find("retrieve");
      if (pos == std::string::npos || pos == 0) {
        std::printf("%-24s | translation failed: %s\n", q.name,
                    tree.status().ToString().c_str());
        continue;
      }
      auto pre = s2.Execute(src.substr(0, pos));
      if (!pre.ok()) {
        std::printf("%-24s | %s\n", q.name, pre.status().ToString().c_str());
        continue;
      }
      tree = s2.Translate(src.substr(pos));
      if (!tree.ok()) {
        std::printf("%-24s | %s\n", q.name, tree.status().ToString().c_str());
        continue;
      }
    }

    CostModel cost(&db);
    auto before = cost.Estimate(*tree);
    Planner::Options opts;
    opts.search_budget = 48;
    Planner planner(&db, opts);
    ExprPtr optimized;
    double plan_ms = TimeMs(
        [&] {
          auto r = planner.Optimize(*tree);
          if (!r.ok()) std::abort();
          optimized = *r;
        },
        1);
    auto after = cost.Estimate(optimized);

    Evaluator check_raw(&db);
    Evaluator check_opt(&db);
    auto va = check_raw.Eval(*tree);
    auto vb = check_opt.Eval(optimized);
    if (!va.ok() || !vb.ok() || !(*va)->Equals(**vb)) {
      std::printf("%-24s | OPTIMIZED PLAN DISAGREES\n", q.name);
      continue;
    }
    double raw_ms = TimeMs([&] { MustEval(&db, *tree); });
    double opt_ms = TimeMs([&] { MustEval(&db, optimized); });
    std::printf("%-24s | %10.0f %10.0f | %9.2f | %10.3f %10.3f %7.2fx\n",
                q.name, before.ok() ? before->total : -1,
                after.ok() ? after->total : -1, plan_ms, raw_ms, opt_ms,
                raw_ms / opt_ms);
  }

  std::printf(
      "\nNotes: 'est' is the cost model's abstract occurrence-touch count;\n"
      "raw plans come straight from the EXCESS translator (the paper's\n"
      "initial query trees), optimized plans from the heuristic fixpoint\n"
      "plus best-first rule search. Correctness of every optimized plan is\n"
      "re-checked against the raw plan before timing.\n");
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
