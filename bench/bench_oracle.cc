// Throughput of the src/check/ differential-testing oracles, in seeds per
// second. This is what sizes the ctest budget (500 seeds/oracle) and soak
// runs (EXCESS_SWEEP_SEEDS): the rules oracle dominates because each plan
// is re-evaluated once per rule application site.
//
//   ./bench_oracle [seeds]        (default 200)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/check/gen.h"
#include "src/check/oracle.h"

namespace excess {
namespace check {
namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
void RunOracle(const char* name, uint64_t seeds, const GenOptions& opts,
               Fn fn) {
  OracleStats stats;
  std::vector<Divergence> divs;
  auto start = Clock::now();
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    Status s = fn(seed, opts, &stats, &divs);
    if (!s.ok()) {
      std::printf("%-10s seed %llu error: %s\n", name,
                  static_cast<unsigned long long>(seed),
                  s.ToString().c_str());
      return;
    }
  }
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf(
      "%-10s %6llu seeds  %8.1f seeds/s  %7lld plans  %9lld comparisons  "
      "%6lld skipped  %zu divergences\n",
      name, static_cast<unsigned long long>(seeds),
      static_cast<double>(seeds) / secs,
      static_cast<long long>(stats.plans),
      static_cast<long long>(stats.comparisons),
      static_cast<long long>(stats.skipped), divs.size());
}

int Main(int argc, char** argv) {
  uint64_t seeds = 200;
  if (argc > 1) seeds = std::strtoull(argv[1], nullptr, 10);
  GenOptions opts;
  RunOracle("rules", seeds, opts, CheckRulesSeed);
  RunOracle("lowering", seeds, opts, CheckLoweringSeed);
  RunOracle("roundtrip", seeds, opts, CheckRoundTripSeed);

  int64_t parsed = 0;
  auto start = Clock::now();
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    parsed += FuzzParserSeed(seed, opts);
  }
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("%-10s %6llu seeds  %8.1f seeds/s  %7lld inputs parsed\n",
              "fuzz", static_cast<unsigned long long>(seeds),
              static_cast<double>(seeds) / secs,
              static_cast<long long>(parsed));
  return 0;
}

}  // namespace
}  // namespace check
}  // namespace excess

int main(int argc, char** argv) { return excess::check::Main(argc, argv); }
