// Durable-commit overhead and recovery cost of the storage engine.
//
// Three questions, each answered with a number in BENCH_storage.json:
//
//  1. What does the write-ahead log cost per committed statement? A
//     figure-plan mutation trace (retrieve-into / append / delete
//     statements over the university database, the same queries the
//     Figure 3-11 benches time) runs through a bare session and through a
//     storage-attached session with fsync disabled, paired rep by rep.
//     The acceptance bar is <15% total overhead: serializing the source
//     line and appending it to the log must stay small next to actually
//     evaluating the statement. fsync-on cost is reported separately (it
//     measures the disk, not the engine) with no bar.
//
//  2. Does group commit amortize the fsync? A 64-statement transaction is
//     committed as one TXN_BEGIN..TXN_COMMIT WAL group sharing a single
//     fsync; the bar is that the `commit` costs at most 2x one fsync'd
//     single-statement commit (against the ~64x of individual syncs).
//
//  3. What does recovery cost as the WAL grows? The same mutation
//     statement is committed N times without a checkpoint, the session is
//     dropped, and OpenStorage is timed for N in {100, 400, 1600}. Replay
//     must stay near-linear: 4x the records within 2.25x the time.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/support.h"
#include "excess/session.h"
#include "methods/registry.h"

namespace excess {
namespace bench {
namespace {

namespace fs = std::filesystem;

/// The mutation trace: figure-derived retrieves materialized with `into`,
/// plus the append/delete statements that churn a scratch multiset. Every
/// statement commits (and therefore logs) — a trace of T statements costs
/// T WAL appends on the storage-attached run.
std::vector<std::string> MutationTrace() {
  std::vector<std::string> trace;
  for (int round = 0; round < 4; ++round) {
    std::string i = std::to_string(round);
    // Figure 4 (four-stage navigation) materialized.
    trace.push_back(
        "retrieve (Employees.dept.name) where Employees.city = \"city_0\" "
        "into F4_" + i);
    // Figure 9-11 (grouped selection) materialized.
    trace.push_back(
        "retrieve (Students.name) by Students.dept.division "
        "where Students.dept.floor = 2 into F9_" + i);
    // Figure 3 (array subscript + deref) materialized.
    trace.push_back("retrieve (TopTen[5].name, TopTen[5].salary) into F3_" + i);
    trace.push_back("append all {" + i + ", " + i + ", 7} to Scratch");
    trace.push_back("delete Scratch where Scratch = 7");
  }
  return trace;
}

Database* MakeUniversity() {
  UniversityParams p;
  p.num_students = 300;
  p.num_employees = 150;
  p.num_departments = 8;
  Database* db = new Database();
  if (!BuildUniversity(db, p).ok()) std::abort();
  return db;
}

/// Runs the whole trace through one fresh session; with a non-empty path
/// the session is storage-attached and every statement commits durably.
/// Returns the wall time of the statement loop only — opening the database
/// (which writes the initial whole-fixture snapshot) is setup, not commit
/// cost, and is excluded on both sides.
double RunTrace(const std::vector<std::string>& trace,
                const std::string& path) {
  std::unique_ptr<Database> db(MakeUniversity());
  MethodRegistry methods(&db->catalog());
  Session s(db.get(), &methods);
  if (!path.empty()) {
    fs::remove(path);
    fs::remove(path + ".wal");
    if (!s.OpenStorage(path).ok()) std::abort();
  }
  if (!s.Execute("create Scratch: { int4 }").ok()) std::abort();
  return TimeMs(
      [&] {
        for (const auto& stmt : trace) {
          auto r = s.Execute(stmt);
          if (!r.ok()) {
            std::fprintf(stderr, "trace statement failed: %s\n%s\n",
                         stmt.c_str(), r.status().ToString().c_str());
            std::abort();
          }
        }
      },
      1);
}

int Run() {
  const fs::path dir =
      fs::temp_directory_path() / "excess_bench_storage";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string db_path = (dir / "bench.exdb").string();
  const std::vector<std::string> trace = MutationTrace();
  const auto count = static_cast<int64_t>(trace.size());

  // --- 1a. WAL commit overhead, fsync off (the engine's own cost) -----------
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  constexpr int kAttempts = 3;
  constexpr int kReps = 5;
  double overhead = 1e18;
  double bare = 0, wal = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    bare = 1e18;
    wal = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {  // paired: same machine drift
      double b = RunTrace(trace, "");
      double w = RunTrace(trace, db_path);
      if (b < bare) bare = b;
      if (w < wal) wal = w;
    }
    overhead = bare > 0 ? (wal - bare) / bare : 0;
    std::printf("trace (%lld stmts): bare %.3f ms, wal %.3f ms, "
                "overhead %.1f%%\n",
                static_cast<long long>(count), bare, wal, overhead * 100);
    if (overhead < 0.15) break;
    std::printf("over budget, re-measuring (%d/%d)\n", attempt + 1, kAttempts);
  }

  // --- 1b. fsync-on cost (reported, not gated: this measures the disk) ------
  ::setenv("EXCESS_WAL_FSYNC", "1", 1);
  double wal_fsync = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    double w = RunTrace(trace, db_path);
    if (w < wal_fsync) wal_fsync = w;
  }
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  std::printf("trace with fsync: %.3f ms (%.3f ms/commit)\n", wal_fsync,
              wal_fsync / static_cast<double>(count));

  std::vector<BenchRow> rows;
  rows.push_back({"trace_bare", count, bare, 1});
  rows.push_back({"trace_wal_nofsync", count, wal, wal > 0 ? bare / wal : 1});
  rows.push_back({"trace_wal_fsync", count, wal_fsync,
                  wal_fsync > 0 ? bare / wal_fsync : 1});

  // --- 1c. group commit amortizes fsync (fsync on: the whole point) ---------
  // A 64-statement transaction's `commit` appends the whole TXN_BEGIN ..
  // TXN_COMMIT group with ONE fsync, so it must cost about the same as a
  // single fsync'd statement — the bar is 2x, against the ~64x that 64
  // individually synced commits would cost. The row's speedup column is the
  // amortization factor: (64 x one single commit) / one group commit.
  ::setenv("EXCESS_WAL_FSYNC", "1", 1);
  constexpr int kGroup = 64;
  double t_single = 1e18, t_group = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    t_single = 1e18;
    t_group = 1e18;
    const std::string path = (dir / "group.exdb").string();
    fs::remove(path);
    fs::remove(path + ".wal");
    std::unique_ptr<Database> db(MakeUniversity());
    MethodRegistry methods(&db->catalog());
    Session s(db.get(), &methods);
    if (!s.OpenStorage(path).ok()) std::abort();
    if (!s.Execute("create Scratch: { int4 }").ok()) std::abort();
    for (int rep = 0; rep < kReps; ++rep) {
      double one = TimeMs(
          [&] { if (!s.Execute("append 1 to Scratch").ok()) std::abort(); },
          1);
      if (one < t_single) t_single = one;
      if (!s.Execute("begin").ok()) std::abort();
      for (int i = 0; i < kGroup; ++i) {
        if (!s.Execute("append " + std::to_string(i) + " to Scratch").ok()) {
          std::abort();
        }
      }
      double grp = TimeMs(
          [&] { if (!s.Execute("commit").ok()) std::abort(); }, 1);
      if (grp < t_group) t_group = grp;
    }
    std::printf("group commit: single fsync'd commit %.3f ms, %d-statement "
                "group commit %.3f ms (%.2fx one commit, amortization "
                "%.1fx)\n",
                t_single, kGroup, t_group, t_group / t_single,
                kGroup * t_single / t_group);
    if (t_group <= 2 * t_single) break;
    std::printf("over budget, re-measuring (%d/%d)\n", attempt + 1, kAttempts);
  }
  ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  rows.push_back({"commit_single_fsync", 1, t_single, 1});
  rows.push_back({"commit_group_64", kGroup, t_group,
                  t_group > 0 ? kGroup * t_single / t_group : 1});

  // --- 2. recovery time vs WAL length ---------------------------------------
  const std::vector<int64_t> wal_sizes = {100, 400, 1600};
  for (int64_t n : wal_sizes) {
    const std::string path =
        (dir / ("recover_" + std::to_string(n) + ".exdb")).string();
    std::unique_ptr<Database> db(MakeUniversity());
    MethodRegistry methods(&db->catalog());
    Session s(db.get(), &methods);
    if (!s.OpenStorage(path).ok()) std::abort();
    if (!s.Execute("create Scratch: { int4 }").ok()) std::abort();
    for (int64_t i = 0; i < n; ++i) {
      if (!s.Execute("append " + std::to_string(i) + " to Scratch").ok()) {
        std::abort();
      }
    }
  }  // dropped without checkpoint: recovery replays all n appends

  // Replay must be near-linear in record count: each append folds into the
  // recovered database in O(|addition|), so 4x the records is bounded by
  // 1.5^2 = 2.25x the time (the pre-fix per-record re-copy made this
  // quadratic: 4x records cost ~9x).
  std::vector<double> recover_ms(wal_sizes.size(), 0);
  double replay_ratio = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    for (size_t k = 0; k < wal_sizes.size(); ++k) {
      const int64_t n = wal_sizes[k];
      const std::string path =
          (dir / ("recover_" + std::to_string(n) + ".exdb")).string();
      recover_ms[k] = TimeMs(
          [&] {
            std::unique_ptr<Database> db(new Database());
            MethodRegistry methods(&db->catalog());
            Session s(db.get(), &methods);
            if (!s.OpenStorage(path).ok()) std::abort();
            if (s.last_recovery().replayed != static_cast<uint64_t>(n + 1)) {
              std::fprintf(stderr, "recovery replayed %llu, expected %lld\n",
                           static_cast<unsigned long long>(
                               s.last_recovery().replayed),
                           static_cast<long long>(n + 1));
              std::abort();
            }
          },
          3);
      std::printf("recovery of %lld-record WAL: %.3f ms\n",
                  static_cast<long long>(n), recover_ms[k]);
    }
    replay_ratio = recover_ms.back() / recover_ms[1];  // 1600 vs 400 records
    std::printf("replay scaling: 4x records -> %.2fx time (budget 2.25x)\n",
                replay_ratio);
    if (replay_ratio <= 2.25) break;
    std::printf("over budget, re-measuring (%d/%d)\n", attempt + 1, kAttempts);
  }
  for (size_t k = 0; k < wal_sizes.size(); ++k) {
    rows.push_back({"recover_wal_" + std::to_string(wal_sizes[k]),
                    wal_sizes[k], recover_ms[k], 1});
  }

  WriteBenchJson("storage", rows);
  fs::remove_all(dir);
  ::unsetenv("EXCESS_WAL_FSYNC");

  int failures = 0;
  if (overhead >= 0.15) {
    std::fprintf(stderr,
                 "WAL COMMIT OVERHEAD VIOLATION: %.1f%% >= 15%% budget on %d "
                 "consecutive attempts\n",
                 overhead * 100, kAttempts);
    ++failures;
  }
  if (t_group > 2 * t_single) {
    std::fprintf(stderr,
                 "GROUP COMMIT VIOLATION: a %d-statement group commit costs "
                 "%.2fx one fsync'd commit (budget 2x) on %d consecutive "
                 "attempts\n",
                 kGroup, t_group / t_single, kAttempts);
    ++failures;
  }
  if (replay_ratio > 2.25) {
    std::fprintf(stderr,
                 "WAL REPLAY SCALING VIOLATION: 4x records cost %.2fx time "
                 "(budget 2.25x) on %d consecutive attempts\n",
                 replay_ratio, kAttempts);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() { return excess::bench::Run(); }
