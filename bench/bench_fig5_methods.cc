// Figure 5 / §4: algebraic treatments of overridden methods. Compares, on
// a mixed {Person} collection:
//   A — run-time switch-table dispatch (one scan, late binding);
//   B — the ⊎-based plan of Figure 5 (one exactly-typed scan per distinct
//       implementation, bodies spliced and visible to the optimizer);
//   C — plan B over per-type extent indexes (the paper's note that indexes
//       make the multi-scan penalty disappear).
// Scenarios follow §4's discussion: a trivial "boss" method (switch should
// win or tie), an expensive method scanning sub_ords (the scans stop
// mattering), and a composed query where only plan B lets the optimizer
// fuse an outer selection into the bodies.

#include <cstdio>

#include "bench/support.h"
#include "core/planner.h"
#include "methods/dispatch.h"
#include "methods/registry.h"

namespace excess {
namespace bench {
namespace {

ExprPtr PersonBoss() { return TupExtract("name", Input()); }
ExprPtr StudentBoss() {
  return TupExtract("name", Deref(TupExtract("advisor", Input())));
}
ExprPtr EmployeeBoss() {
  return TupExtract("name", Deref(TupExtract("manager", Input())));
}

/// §4's expensive overridden method: for an Employee, total the salaries
/// of all subordinates (scans + derefs sub_ords); cheap bodies elsewhere.
ExprPtr EmployeeSubordCost() {
  return Agg("sum", SetApply(TupExtract("salary", Deref(Input())),
                             TupExtract("sub_ords", Input())));
}
ExprPtr PersonZero() { return IntLit(0); }

struct Fixture {
  std::unique_ptr<Database> db = std::make_unique<Database>();
  std::unique_ptr<MethodRegistry> registry;

  ValuePtr Eval(const ExprPtr& plan) {
    Evaluator ev(db.get(), registry.get());
    auto r = ev.Eval(plan);
    if (!r.ok()) {
      std::fprintf(stderr, "methods bench failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    return *r;
  }
  double Time(const ExprPtr& plan) {
    return TimeMs([&] { Eval(plan); });
  }
};

Fixture MakeFixture(int per_type, int subords) {
  Fixture f;
  UniversityParams p;
  p.num_employees = std::max(40, per_type);
  p.num_students = std::max(40, per_type);
  p.subords_per_manager = subords;
  if (!BuildUniversity(f.db.get(), p).ok()) std::abort();
  if (!AddMixedPersonSet(f.db.get(), "P", per_type, per_type, per_type, p)
           .ok()) {
    std::abort();
  }
  f.registry = std::make_unique<MethodRegistry>(&f.db->catalog());
  auto ok = [&](Status s) {
    if (!s.ok()) std::abort();
  };
  ok(f.registry->Define({"Person", "boss", {}, StringSchema(), PersonBoss()}));
  ok(f.registry->Define(
      {"Student", "boss", {}, StringSchema(), StudentBoss()}));
  ok(f.registry->Define(
      {"Employee", "boss", {}, StringSchema(), EmployeeBoss()}));
  ok(f.registry->Define(
      {"Person", "workload", {}, IntSchema(), PersonZero()}));
  ok(f.registry->Define(
      {"Employee", "workload", {}, IntSchema(), EmployeeSubordCost()}));
  return f;
}

void Scenario(const char* title, const std::string& method,
              const std::vector<int>& sizes, int subords) {
  std::printf("--- %s ---\n", title);
  std::printf("%8s | %12s %12s %12s | agree\n", "|P|", "switch ms",
              "union ms", "extents ms");
  for (int per_type : sizes) {
    Fixture f = MakeFixture(per_type, subords);
    DispatchPlanner planner(f.db.get(), f.registry.get());
    auto a = planner.SwitchTablePlan(Var("P"), method);
    auto b = planner.UnionPlan(Var("P"), "Person", method);
    auto c = planner.UnionPlanOverExtents("P", "Person", method);
    if (!a.ok() || !b.ok() || !c.ok()) std::abort();
    ValuePtr va = f.Eval(*a);
    ValuePtr vb = f.Eval(*b);
    ValuePtr vc = f.Eval(*c);
    bool agree = va->Equals(*vb) && vb->Equals(*vc);
    std::printf("%8d | %12.3f %12.3f %12.3f | %s\n", 3 * per_type, f.Time(*a),
                f.Time(*b), f.Time(*c), agree ? "yes" : "NO");
  }
  std::printf("\n");
}

void ComposedQueryScenario() {
  std::printf(
      "--- composed query: filter boss() results, optimizer visibility ---\n");
  std::printf(
      "(only the union plan exposes the bodies, so only it lets the\n"
      " planner fuse the outer selection via rules 15/27)\n");
  std::printf("%8s | %14s %14s %14s\n", "|P|", "switch ms", "union raw ms",
              "union opt ms");
  for (int per_type : {200, 1000, 4000}) {
    Fixture f = MakeFixture(per_type, 4);
    DispatchPlanner planner(f.db.get(), f.registry.get());
    auto a = planner.SwitchTablePlan(Var("P"), "boss");
    auto b = planner.UnionPlan(Var("P"), "Person", "boss");
    if (!a.ok() || !b.ok()) std::abort();
    PredicatePtr gt = Gt(Input(), StrLit("person_3"));
    ExprPtr qa = Select(gt, *a);
    ExprPtr qb = Select(gt, *b);
    Planner::Options opts;
    opts.search_budget = 48;  // rule 12 (distribute over the union) is
                              // exploratory; rule 15 then fuses per branch
    Planner opt(f.db.get(), opts);
    auto qb_opt = opt.Optimize(qb);
    if (!qb_opt.ok()) std::abort();
    ValuePtr ra = f.Eval(qa);
    ValuePtr rb = f.Eval(*qb_opt);
    if (!ra->Equals(*rb)) std::abort();
    std::printf("%8d | %14.3f %14.3f %14.3f\n", 3 * per_type, f.Time(qa),
                f.Time(qb), f.Time(*qb_opt));
  }
  std::printf("\n");
}

void Run() {
  std::printf("=== Figure 5 / §4: overridden-method dispatch strategies ===\n\n");
  Scenario("cheap method (boss): dispatch overhead dominates", "boss",
           {200, 1000, 4000}, 4);
  Scenario("expensive method (workload, sub_ords scan = 16): scans amortize",
           "workload", {200, 1000}, 16);
  Scenario("expensive method, sub_ords = 128", "workload", {200, 1000}, 128);
  ComposedQueryScenario();

  // Archive the dispatch plan trees as estimates-only EXPLAIN JSON for CI.
  {
    Fixture f = MakeFixture(200, 4);
    DispatchPlanner planner(f.db.get(), f.registry.get());
    auto a = planner.SwitchTablePlan(Var("P"), "boss");
    auto b = planner.UnionPlan(Var("P"), "Person", "boss");
    if (!a.ok() || !b.ok()) std::abort();
    WritePlanJson(f.db.get(), "fig5",
                  {{"boss_switch", *a}, {"boss_union", *b}});
  }
  std::printf(
      "Shapes (§4): for the trivial method the single-scan switch table is\n"
      "competitive and the 3-scan union plan pays for its extra passes —\n"
      "unless extents erase them; as the per-element body cost grows the\n"
      "scan overhead becomes negligible; and when the invoking query\n"
      "composes with the method, only the union plan can be optimized as\n"
      "one tree (the paper's central argument for the (+)-based approach).\n");
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() {
  excess::bench::Run();
  return 0;
}
