// Governor checkpointing overhead on the paper's figure plans.
//
// Every EvalNode entry, kernel bulk loop, and hash-join pair is a governor
// checkpoint when a governor is attached; this bench times the Figure 6-11
// plans with no governor against the same plans under an *unlimited*
// governor (the worst case for overhead: every checkpoint runs, none ever
// fires) and asserts the total slowdown stays under 5% — the budget that
// justifies having the checks on for every session statement by default.
//
// Emits BENCH_governor.json; the final row is the total with its measured
// overhead factor.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/support.h"
#include "core/governor.h"

namespace excess {
namespace bench {
namespace {

/// One evaluation of `plan`, governed (unlimited governor: full checkpoint
/// traffic, no trips) or bare.
void RunOnce(Database* db, const ExprPtr& plan, bool governed) {
  Evaluator ev(db);
  Governor gov;
  if (governed) ev.set_governor(&gov);
  auto r = ev.Eval(plan);
  if (!r.ok()) {
    std::fprintf(stderr, "bench plan failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
}

/// Paired best-of-reps: bare and governed runs alternate within the same
/// rep loop, so both see the same machine conditions — back-to-back blocks
/// would fold CPU frequency / load drift into the overhead estimate.
void TimePlanPaired(Database* db, const ExprPtr& plan, double* bare_ms,
                    double* governed_ms, int reps = 7) {
  *bare_ms = 1e18;
  *governed_ms = 1e18;
  for (int i = 0; i < reps; ++i) {
    double b = TimeMs([&] { RunOnce(db, plan, false); }, 1);
    double g = TimeMs([&] { RunOnce(db, plan, true); }, 1);
    if (b < *bare_ms) *bare_ms = b;
    if (g < *governed_ms) *governed_ms = g;
  }
}

int Run() {
  UniversityParams p;
  p.num_students = 400;
  p.num_employees = 200;
  p.num_departments = 8;
  p.advisor_as_name = true;
  p.advisor_pool = 10;
  p.duplication = 2;
  Database db;
  if (!BuildUniversity(&db, p).ok()) std::abort();

  struct Plan {
    const char* name;
    ExprPtr expr;
  };
  const std::vector<Plan> plans = {
      {"fig6", Fig6Plan()},          {"fig7", Fig7Plan()},
      {"fig8", Fig8Plan()},          {"fig9", Fig9Plan(2)},
      {"fig10", Fig10Plan(2)},       {"fig11", Fig11Plan(2)},
      {"fig6_hash", LowerPhysical(Fig6Plan())},
  };

  // Answers must not change under governance.
  for (const auto& pl : plans) {
    Database check_db;
    if (!BuildUniversity(&check_db, p).ok()) std::abort();
    ValuePtr bare = MustEval(&check_db, pl.expr);
    Evaluator ev(&check_db);
    Governor gov;
    ev.set_governor(&gov);
    auto governed = ev.Eval(pl.expr);
    if (!governed.ok() || !(*governed)->Equals(*bare)) {
      std::fprintf(stderr, "SHAPE VIOLATION: %s changes under governor\n",
                   pl.name);
      std::abort();
    }
  }

  // The acceptance bar: <5% checkpointing overhead across the figure
  // plans. Shared CI boxes swing by more than that between *bare* runs of
  // the same binary, so a single over-budget sample proves nothing; a
  // genuine regression is over budget every time. Re-measure up to
  // kAttempts times and fail only if no attempt lands under the bar.
  constexpr int kAttempts = 3;
  double total_overhead = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::vector<BenchRow> rows;
    double total_bare = 0, total_governed = 0;
    std::printf("%-12s %12s %14s %10s\n", "plan", "bare ms", "governed ms",
                "overhead");
    for (const auto& pl : plans) {
      double bare = 0, governed = 0;
      TimePlanPaired(&db, pl.expr, &bare, &governed);
      total_bare += bare;
      total_governed += governed;
      EvalStats stats;
      ValuePtr v = MustEval(&db, pl.expr, &stats);
      double overhead = bare > 0 ? (governed - bare) / bare : 0;
      std::printf("%-12s %12.3f %14.3f %9.1f%%\n", pl.name, bare, governed,
                  overhead * 100);
      rows.push_back(
          {std::string(pl.name) + "_bare", v->TotalCount(), bare, 1});
      rows.push_back({std::string(pl.name) + "_governed", v->TotalCount(),
                      governed, governed > 0 ? bare / governed : 1});
    }

    total_overhead =
        total_bare > 0 ? (total_governed - total_bare) / total_bare : 0;
    std::printf("%-12s %12.3f %14.3f %9.1f%%\n", "total", total_bare,
                total_governed, total_overhead * 100);
    rows.push_back({"total_governed_vs_bare", 0, total_governed,
                    total_governed > 0 ? total_bare / total_governed : 1});
    WriteBenchJson("governor", rows);
    if (total_overhead < 0.05) break;
    std::printf("over budget (%.1f%%), re-measuring (%d/%d)\n",
                total_overhead * 100, attempt + 1, kAttempts);
  }

  if (total_overhead >= 0.05) {
    std::fprintf(stderr,
                 "GOVERNOR OVERHEAD VIOLATION: %.1f%% >= 5%% budget on %d "
                 "consecutive attempts\n",
                 total_overhead * 100, kAttempts);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace excess

int main() { return excess::bench::Run(); }
